//! Trace record/replay: capturing a live run's per-interval activity and
//! driving the power/thermal/DTM loop from the recording, without
//! re-simulating the core.
//!
//! * [`TraceRecorder`] is the tap the default stages write into when
//!   [`CoupledEngine::run_recorded`](super::CoupledEngine::run_recorded)
//!   installs it: the pilot's merged activity, one record per evaluation
//!   interval (flattened counters + the gated trace-cache bank), and the
//!   run's final core statistics. Recording only observes — a recorded
//!   run's [`AppResult`](crate::runner::AppResult) is bit-identical to an
//!   unrecorded one.
//! * [`ReplayBackend`] is the uarch-free stage pipeline that consumes a
//!   recorded [`ActivityTrace`]: a replay pilot re-derives the nominal
//!   power bit-exactly from the recorded pilot activity (so warm starts —
//!   and the shared [`WarmStartCache`] keys — are identical to live), the
//!   regular [`WarmStartStage`] runs unchanged, and the replay loop feeds
//!   each recorded interval through the same power/thermal/DTM arithmetic
//!   as the live interval loop.
//!
//! # When replay is exact
//!
//! Replay is **byte-identical** to the live run whenever the core
//! pipeline would have behaved identically: same configuration core side
//! (seed, run length, interval, machine shape, hopping) and a DTM policy
//! that acts purely at the power level ([`DtmAction::Nominal`] /
//! [`DtmAction::Throttle`], i.e. no policy or the emergency throttle).
//! Policies that perturb the core — DVFS's clock rescaling, fetch gating,
//! migration — change the activity stream itself; the engine rejects them
//! at build time with [`EngineError::ReplayIncompatible`] naming the
//! offending policy (and the sweep executor falls back to live
//! simulation). One deliberate approximation remains: a thermally-biased
//! bank mapping reacts to the replayed temperature trajectory, whose
//! bank-mapping decisions are baked into the recording — replaying such a
//! trace under a *different* power-side configuration is an approximation
//! rather than exact, while replaying under the recording configuration
//! is always exact.

use std::sync::Arc;

use distfront_power::{BlockId, Machine, OperatingPoint};
use distfront_trace::record::{
    ActivityTrace, FinalStats, IntervalRecord, TraceMeta, TraceShape, TRACE_FORMAT_VERSION,
};
use distfront_trace::Workload;
use distfront_uarch::{record as tap, ActivityCounters};

use super::stages::WarmStartStage;
use super::sweep::WarmStartCache;
use super::traits::{DtmAction, Stage};
use super::{EngineCx, EngineError};
use crate::experiment::ExperimentConfig;

/// Collects a live run's activity into an [`ActivityTrace`].
///
/// Installed in [`EngineCx::recorder`] by
/// [`CoupledEngine::run_recorded`](super::CoupledEngine::run_recorded);
/// the pilot and interval-loop stages feed it at each interval boundary.
#[derive(Debug)]
pub struct TraceRecorder {
    meta: TraceMeta,
    pilot: Vec<u64>,
    intervals: Vec<IntervalRecord>,
}

impl TraceRecorder {
    /// A recorder for a run of `workload` under `cfg`.
    ///
    /// `custom_dtm` flags a DTM policy installed through
    /// [`CoupledEngine::with_dtm`](super::CoupledEngine::with_dtm) rather
    /// than the configuration's [`DtmSpec`](crate::experiment::DtmSpec):
    /// an arbitrary boxed policy cannot be proven power-level-only, so
    /// such recordings are conservatively marked not replay-safe.
    pub fn new(cfg: &ExperimentConfig, workload: &Workload, custom_dtm: bool) -> Self {
        let pc = &cfg.processor;
        TraceRecorder {
            meta: TraceMeta {
                version: TRACE_FORMAT_VERSION,
                workload: workload.name().to_string(),
                config: cfg.name.to_string(),
                processor_fingerprint: processor_fingerprint(cfg),
                seed: cfg.seed,
                uops_per_app: cfg.uops_per_app,
                interval_cycles: cfg.interval_cycles,
                shape: TraceShape {
                    partitions: pc.frontend_mode.partitions() as u32,
                    backends: pc.backends as u32,
                    tc_banks: pc.trace_cache.physical_banks() as u32,
                },
                hop: cfg.hop,
                replay_safe: !custom_dtm && cfg.dtm.as_ref().is_none_or(|d| d.replay_compatible()),
                dtm: cfg
                    .dtm
                    .as_ref()
                    .map(|d| d.name().to_string())
                    .or_else(|| custom_dtm.then(|| "custom".to_string())),
            },
            pilot: Vec::new(),
            intervals: Vec::new(),
        }
    }

    /// Records the pilot phase's merged activity.
    pub fn record_pilot(&mut self, act: &ActivityCounters) {
        self.pilot = tap::flatten(act);
    }

    /// Records one evaluation interval.
    pub fn record_interval(&mut self, act: &ActivityCounters, gated_bank: Option<u8>, done: bool) {
        self.intervals.push(IntervalRecord {
            counters: tap::flatten(act),
            gated_bank,
            done,
        });
    }

    /// Finalizes the trace with the run's core statistics.
    pub fn finish(self, finals: FinalStats) -> ActivityTrace {
        ActivityTrace {
            meta: self.meta,
            pilot: self.pilot,
            intervals: self.intervals,
            finals,
        }
    }
}

/// The uarch-free replay pipeline over a recorded [`ActivityTrace`].
///
/// Use through
/// [`CoupledEngine::with_replay`](super::CoupledEngine::with_replay) (or a
/// replaying [`SweepRunner`](super::SweepRunner)); [`ReplayBackend::stages`]
/// exposes the raw stage list for custom pipelines.
#[derive(Debug)]
pub struct ReplayBackend;

impl ReplayBackend {
    /// Checks that replaying `trace` for (`cfg`, `workload`) is exact.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::ReplayIncompatible`] naming the first
    /// mismatch: an unsupported trace version, a core-side configuration
    /// difference (workload, seed, run length, interval, machine shape,
    /// hopping), a core-perturbing DTM policy on either side, or an empty
    /// recording.
    pub fn validate(
        cfg: &ExperimentConfig,
        workload: &Workload,
        trace: &ActivityTrace,
    ) -> Result<(), EngineError> {
        let m = &trace.meta;
        let fail = |msg: String| Err(EngineError::ReplayIncompatible(msg));
        if m.version != TRACE_FORMAT_VERSION {
            return fail(format!(
                "trace format version {} (this build replays {TRACE_FORMAT_VERSION})",
                m.version
            ));
        }
        if m.workload != workload.name() {
            return fail(format!(
                "trace records workload {}, run wants {}",
                m.workload,
                workload.name()
            ));
        }
        // The fingerprint covers the *whole* core side: two processor
        // configurations sharing shape/seed/run-length but differing
        // anywhere else (say, only in the trace-cache mapping policy)
        // produce different activity streams and must never stand in for
        // each other.
        if m.processor_fingerprint != processor_fingerprint(cfg) {
            return fail(format!(
                "trace was recorded under processor configuration {} \
                 (fingerprint {:#018x}), which differs from this run's \
                 ({:#018x})",
                m.config,
                m.processor_fingerprint,
                processor_fingerprint(cfg)
            ));
        }
        let pc = &cfg.processor;
        let shape = TraceShape {
            partitions: pc.frontend_mode.partitions() as u32,
            backends: pc.backends as u32,
            tc_banks: pc.trace_cache.physical_banks() as u32,
        };
        if m.shape != shape {
            return fail(format!(
                "trace machine shape {:?} differs from the configuration's {shape:?}",
                m.shape
            ));
        }
        for (field, recorded, wanted) in [
            ("seed", m.seed, cfg.seed),
            ("uops_per_app", m.uops_per_app, cfg.uops_per_app),
            ("interval_cycles", m.interval_cycles, cfg.interval_cycles),
        ] {
            if recorded != wanted {
                return fail(format!("trace {field} {recorded} differs from {wanted}"));
            }
        }
        if m.hop != cfg.hop {
            return fail(format!(
                "trace records hop={}, configuration has hop={}",
                m.hop, cfg.hop
            ));
        }
        if !m.replay_safe {
            return fail(format!(
                "trace was recorded under the core-perturbing DTM policy {}",
                m.dtm.as_deref().unwrap_or("<unknown>")
            ));
        }
        if let Some(spec) = &cfg.dtm {
            if !spec.replay_compatible() {
                return fail(format!(
                    "DTM policy {} perturbs the core pipeline and cannot run on a replay",
                    spec.name()
                ));
            }
        }
        if trace.intervals.is_empty() {
            return fail("trace records no evaluation intervals".to_string());
        }
        if trace.pilot.len() != m.shape.flat_len() {
            return fail("trace pilot record mismatches its declared shape".to_string());
        }
        Ok(())
    }

    /// The replay pipeline: replay-pilot → warm start → replay-loop.
    ///
    /// The warm start is the regular [`WarmStartStage`] — the replayed
    /// nominal power is bit-identical to the live pilot's, so live and
    /// replayed cells share [`WarmStartCache`] entries.
    pub fn stages(
        trace: Arc<ActivityTrace>,
        cache: Option<Arc<WarmStartCache>>,
    ) -> Vec<Box<dyn Stage>> {
        let warm = match cache {
            Some(c) => WarmStartStage::with_cache(c),
            None => WarmStartStage::new(),
        };
        vec![
            Box::new(ReplayPilotStage {
                trace: Arc::clone(&trace),
            }),
            Box::new(warm),
            Box::new(ReplayLoopStage { trace }),
        ]
    }
}

/// Re-derives the nominal power profile from the recorded pilot activity
/// (bit-identical to [`PilotStage`](super::PilotStage) on the same run).
#[derive(Debug)]
pub struct ReplayPilotStage {
    trace: Arc<ActivityTrace>,
}

impl ReplayPilotStage {
    /// A replay pilot over `trace`.
    pub fn new(trace: Arc<ActivityTrace>) -> Self {
        ReplayPilotStage { trace }
    }
}

impl Stage for ReplayPilotStage {
    fn name(&self) -> &'static str {
        "replay-pilot"
    }

    fn run(&mut self, cx: &mut EngineCx<'_>) -> Result<(), EngineError> {
        let pilot_act = unflatten_for(cx.machine, &self.trace.pilot)?;
        let mut nominal = cx.model.dynamic_power(&pilot_act);
        for (n, i) in nominal.iter_mut().zip(&cx.idle) {
            *n += i;
        }
        cx.model.set_nominal_dynamic(nominal.clone());
        cx.nominal = Some(nominal);
        Ok(())
    }
}

/// Feeds recorded per-interval activity through the same power → thermal
/// → DTM arithmetic as the live
/// [`IntervalLoopStage`](super::IntervalLoopStage), skipping the core
/// simulator entirely.
#[derive(Debug)]
pub struct ReplayLoopStage {
    trace: Arc<ActivityTrace>,
}

impl Stage for ReplayLoopStage {
    fn name(&self) -> &'static str {
        "replay-loop"
    }

    fn run(&mut self, cx: &mut EngineCx<'_>) -> Result<(), EngineError> {
        let trace = Arc::clone(&self.trace);
        let mut action = DtmAction::Nominal;
        for rec in &trace.intervals {
            apply_power_action(cx, action)?;
            let act = unflatten_for(cx.machine, &rec.counters)?;
            let gated: Vec<BlockId> = rec.gated_bank.map(BlockId::TcBank).into_iter().collect();
            let temps_now = cx.thermal.block_temperatures().to_vec();
            let mut power = cx.model.total_power(&act, &temps_now, &gated);
            for (p, i) in power.iter_mut().zip(&cx.idle) {
                *p += i;
            }
            for g in &gated {
                power[cx.machine.index_of(*g)] = 0.0;
            }
            // Same wall-time accounting as the live loop: dt derives from
            // the recorded cycle count at the model's effective frequency,
            // so power-level throttling stretches replayed intervals
            // exactly as it stretches live ones.
            let dt = act.cycles as f64 / cx.model.effective_frequency_hz();
            cx.power_time_sum += power.iter().sum::<f64>() * dt;
            cx.time_sum += dt;
            cx.thermal.advance(&power, dt / 2.0);
            cx.tracker.record(cx.thermal.block_temperatures(), dt / 2.0);
            cx.thermal.advance(&power, dt / 2.0);
            cx.tracker.record(cx.thermal.block_temperatures(), dt / 2.0);
            cx.tracker.end_interval();
            // The live loop's bank rebalance/hop are core-side effects
            // already baked into the recorded activity; only the DTM
            // decision is re-taken (its trajectory is part of what a
            // replayed sweep varies). It runs on the final interval too,
            // exactly like the live loop, so trigger counts match.
            if let Some(ctrl) = &mut cx.dtm {
                action = ctrl.decide(cx.thermal.block_temperatures());
            }
            if rec.done {
                break;
            }
        }
        cx.replay_finals = Some(trace.finals);
        Ok(())
    }
}

/// Opaque fingerprint of the full core-side processor configuration,
/// hashed over its canonical debug rendering (every field participates:
/// frontend mode, penalties, widths, cache and mapping configs, …).
/// Deliberately conservative — any core-side difference, even one that
/// might happen to be activity-neutral, forces a re-record rather than an
/// unproven replay. Stable within a toolchain; across toolchains a
/// mismatch merely falls back to live simulation.
fn processor_fingerprint(cfg: &ExperimentConfig) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{:?}", cfg.processor).hash(&mut h);
    h.finish()
}

/// Reconstructs counters for the machine shape, surfacing layout
/// mismatches as [`EngineError::ReplayIncompatible`].
pub(super) fn unflatten_for(
    machine: Machine,
    flat: &[u64],
) -> Result<ActivityCounters, EngineError> {
    tap::unflatten(machine.partitions, machine.backends, machine.tc_banks, flat)
        .map_err(EngineError::ReplayIncompatible)
}

/// Applies a power-level action, releasing whatever the previous interval
/// engaged (the power half of the live loop's action translation):
/// core-perturbing actions cannot be honored without the simulator and
/// abort the replay.
pub(super) fn apply_power_action(
    cx: &mut EngineCx<'_>,
    action: DtmAction,
) -> Result<(), EngineError> {
    cx.model.set_operating_point(OperatingPoint::nominal());
    match action {
        DtmAction::Nominal => Ok(()),
        DtmAction::Throttle(factor) => {
            cx.model
                .set_operating_point(OperatingPoint::scaled(factor, 1.0));
            Ok(())
        }
        DtmAction::Dvfs { .. } | DtmAction::FetchGate { .. } | DtmAction::MigrateTo(_) => {
            Err(EngineError::ReplayIncompatible(format!(
                "DTM action {action:?} perturbs the core pipeline and cannot run on a replay"
            )))
        }
    }
}
