//! The staged simulation engine.
//!
//! [`runner::run_app`](crate::runner::run_app) used to be one monolithic
//! function that piloted, warm-started and interval-looped an application
//! in-line. This module splits that coupled simulator ⇄ power ⇄ thermal
//! pipeline into composable parts:
//!
//! * [`Stage`] — one phase of an experiment ([`PilotStage`],
//!   [`WarmStartStage`], [`IntervalLoopStage`] reproduce the paper's §4
//!   methodology); custom stages slot in without touching the loop,
//! * [`EngineCx`] — the shared state the stages hand each other
//!   (simulator, power model, thermal backend, accumulators),
//! * [`CoupledEngine`] — builds the context, runs the stage pipeline and
//!   finalizes an [`AppResult`](crate::runner::AppResult),
//! * [`ThermalBackend`] / [`DtmPolicy`] — plug-in points for alternative
//!   thermal solvers and dynamic-thermal-management policies,
//! * [`SweepRunner`] — executes an application × configuration grid in
//!   parallel over `std::thread::scope`, with results ordered exactly as a
//!   serial double loop would produce them; grids are fault-tolerant
//!   ([`SweepRunner::try_grid`] returns a [`SweepReport`] of per-cell
//!   [`CellOutcome`]s — one failing cell never aborts the others), and
//! * [`WarmStartCache`] — shares converged steady-state warm starts
//!   between grid cells keyed by (machine shape, leakage model, nominal
//!   power profile), sharded by key hash with same-key cold solves
//!   deduplicated,
//! * [`TraceRecorder`] / [`ReplayBackend`] — record a live run's
//!   per-interval activity as a multi-operating-point
//!   [`ActivityTrace`](distfront_trace::record::ActivityTrace) and replay
//!   it through the power/thermal/DTM loop without re-simulating the
//!   core. The trace declares which operating points it recorded —
//!   nominal plus the policy-actionable variants (DVFS, fetch-gate duty,
//!   migration targets) — and replay is exact for any policy whose
//!   points the trace covers; a policy needing an unrecorded point is
//!   rejected with [`EngineError::ReplayIncompatible`] naming it, and
//! * [`TraceStore`] / [`TraceMode`] — the sweep-level record-once /
//!   replay-many plumbing, keyed by capability family, with per-cell
//!   fallback to live simulation when no covering trace exists, and
//! * [`BatchScheduler`] — lockstep batched replay: the sweep executor
//!   groups replay-mode cells sharing a machine shape into cohorts
//!   ([`SweepRunner::with_batch`]) and advances each cohort's
//!   temperatures through one shared
//!   [`BatchPropagator`](distfront_thermal::BatchPropagator) — two
//!   mat-mats per interval instead of two mat-vecs per cell — with
//!   per-cell outcomes bit-identical to serial replay.
//!
//! Every path through the engine is bit-identical: the same configuration
//! and profile produce the same [`AppResult`](crate::runner::AppResult)
//! whether run through [`run_app`](crate::runner::run_app), a hand-built
//! [`CoupledEngine`], a cache-shared warm start, or any thread count of a
//! [`SweepRunner`] (this was verified against the pre-refactor monolithic
//! runner when the stages were extracted, and the cross-path identities
//! are tested continuously).
//!
//! # Examples
//!
//! Run a small grid in parallel:
//!
//! ```
//! use distfront::engine::SweepRunner;
//! use distfront::ExperimentConfig;
//! use distfront_trace::AppProfile;
//!
//! let configs = [ExperimentConfig::baseline().with_uops(30_000)];
//! let apps = [AppProfile::test_tiny()];
//! let grid = SweepRunner::new().grid(&configs, &apps);
//! assert_eq!(grid.len(), 1);
//! assert_eq!(grid[0][0].app, "tiny");
//! ```

mod batch;
mod context;
mod coupled;
mod replay;
mod stages;
mod sweep;
mod traits;

pub use batch::BatchScheduler;
pub use context::EngineCx;
pub use coupled::{CoupledEngine, RunStats};
pub use replay::{ReplayBackend, ReplayLoopStage, ReplayPilotStage, TraceRecorder};
pub use stages::{IntervalLoopStage, PilotStage, WarmStartStage};
pub use sweep::{CellOutcome, SweepReport, SweepRunner, TraceMode, TraceStore, WarmStartCache};
pub use traits::{DtmAction, DtmPolicy, Stage, ThermalBackend};

/// Errors the engine can surface instead of panicking mid-pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The experiment configuration failed validation.
    InvalidConfig(String),
    /// A stage ran before a phase it depends on (e.g. warm start without a
    /// pilot's nominal power).
    MissingPhase(&'static str),
    /// An iterative phase failed to converge (e.g. the warm start's
    /// leakage↔temperature fixed point); its state must not be trusted or
    /// cached.
    NotConverged(&'static str),
    /// The run produced no measurable data (e.g. a custom pipeline closed
    /// no measurement intervals), so the report metrics are undefined.
    NoData(&'static str),
    /// A recorded trace cannot stand in for this run: the core-side
    /// configuration differs from the recording's, or the DTM policy
    /// needs an operating point the trace never recorded. The message
    /// names the offending field, policy or missing point; callers that
    /// can (the replaying sweep executor) fall back to live simulation.
    ReplayIncompatible(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidConfig(msg) => write!(f, "{msg}"),
            EngineError::MissingPhase(msg) => write!(f, "missing phase: {msg}"),
            EngineError::NotConverged(msg) => write!(f, "not converged: {msg}"),
            EngineError::NoData(msg) => write!(f, "no data: {msg}"),
            EngineError::ReplayIncompatible(msg) => write!(f, "replay incompatible: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}
