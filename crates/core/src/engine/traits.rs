//! The engine's extension points: stages, thermal backends and DTM
//! policies.

use distfront_thermal::ThermalSolver;

use super::{EngineCx, EngineError};
use crate::emergency::EmergencyController;

/// One phase of an experiment pipeline.
///
/// A stage reads and mutates the shared [`EngineCx`]; the
/// [`CoupledEngine`](super::CoupledEngine) runs its stages in order and
/// finalizes the result from whatever state they leave behind. The default
/// pipeline is pilot → warm start → interval loop, but replacements and
/// extra stages (checkpointing, logging, alternative control policies)
/// compose freely.
pub trait Stage {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
    /// Executes the phase.
    ///
    /// # Errors
    ///
    /// Returns an error when a prerequisite phase has not run or the
    /// context is otherwise unusable.
    fn run(&mut self, cx: &mut EngineCx<'_>) -> Result<(), EngineError>;
}

/// A thermal solver the engine can drive.
///
/// [`ThermalSolver`] is the default implementation; alternative solvers
/// (model-order-reduced networks, lookup-table models, hardware-sensor
/// replay) implement this trait and plug into
/// [`CoupledEngine::with_thermal`](super::CoupledEngine::with_thermal)
/// without the interval loop changing.
pub trait ThermalBackend {
    /// Temperatures of the floorplan blocks, in °C.
    fn block_temperatures(&self) -> &[f64];
    /// Temperatures of every node (blocks, then package), in °C.
    fn node_temperatures(&self) -> &[f64];
    /// Overwrites the full node state (for warm-start restore).
    fn set_node_temperatures(&mut self, t: Vec<f64>);
    /// Adopts the steady state under constant block `power`.
    fn steady_state(&mut self, power: &[f64]);
    /// Advances the transient state by `dt` seconds under constant block
    /// `power`.
    fn advance(&mut self, power: &[f64], dt: f64);
    /// Number of block nodes.
    fn block_count(&self) -> usize;
}

impl ThermalBackend for ThermalSolver {
    fn block_temperatures(&self) -> &[f64] {
        ThermalSolver::block_temperatures(self)
    }

    fn node_temperatures(&self) -> &[f64] {
        self.temperatures()
    }

    fn set_node_temperatures(&mut self, t: Vec<f64>) {
        self.set_temperatures(t);
    }

    fn steady_state(&mut self, power: &[f64]) {
        self.set_steady_state(power);
    }

    fn advance(&mut self, power: &[f64], dt: f64) {
        ThermalSolver::advance(self, power, dt);
    }

    fn block_count(&self) -> usize {
        self.network().block_count()
    }
}

/// A dynamic-thermal-management policy the interval loop consults once per
/// interval.
///
/// [`EmergencyController`] is the built-in implementation; alternative
/// policies (PID throttles, per-block gating, predictive controllers)
/// implement this trait and plug into
/// [`CoupledEngine::with_dtm`](super::CoupledEngine::with_dtm).
pub trait DtmPolicy {
    /// Observes end-of-interval block temperatures; returns the throughput
    /// factor for the next interval (1.0 = full speed).
    fn observe(&mut self, temps_c: &[f64]) -> f64;
    /// Distinct emergencies triggered so far.
    fn triggers(&self) -> u64;
    /// Intervals spent throttled so far.
    fn throttled_intervals(&self) -> u64;
}

impl DtmPolicy for EmergencyController {
    fn observe(&mut self, temps_c: &[f64]) -> f64 {
        EmergencyController::observe(self, temps_c)
    }

    fn triggers(&self) -> u64 {
        EmergencyController::triggers(self)
    }

    fn throttled_intervals(&self) -> u64 {
        EmergencyController::throttled_intervals(self)
    }
}
