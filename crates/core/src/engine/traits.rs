//! The engine's extension points: stages, thermal backends and DTM
//! policies.

use distfront_thermal::{ExpPropagator, ThermalSolver};

use super::{EngineCx, EngineError};
use crate::emergency::EmergencyController;

/// One phase of an experiment pipeline.
///
/// A stage reads and mutates the shared [`EngineCx`]; the
/// [`CoupledEngine`](super::CoupledEngine) runs its stages in order and
/// finalizes the result from whatever state they leave behind. The default
/// pipeline is pilot → warm start → interval loop, but replacements and
/// extra stages (checkpointing, logging, alternative control policies)
/// compose freely.
pub trait Stage {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;
    /// Executes the phase.
    ///
    /// # Errors
    ///
    /// Returns an error when a prerequisite phase has not run or the
    /// context is otherwise unusable.
    fn run(&mut self, cx: &mut EngineCx<'_>) -> Result<(), EngineError>;
}

/// A thermal solver the engine can drive.
///
/// [`ExpPropagator`] (the cached matrix-exponential propagator) is the
/// default implementation; [`ThermalSolver`] keeps the sub-stepped RK4
/// reference selectable via
/// [`ExperimentConfig::integrator`](crate::ExperimentConfig). Alternative
/// solvers (model-order-reduced networks, lookup-table models,
/// hardware-sensor replay) implement this trait and plug into
/// [`CoupledEngine::with_thermal`](super::CoupledEngine::with_thermal)
/// without the interval loop changing.
pub trait ThermalBackend {
    /// Temperatures of the floorplan blocks, in °C.
    fn block_temperatures(&self) -> &[f64];
    /// Temperatures of every node (blocks, then package), in °C.
    fn node_temperatures(&self) -> &[f64];
    /// Overwrites the full node state (for warm-start restore).
    fn set_node_temperatures(&mut self, t: Vec<f64>);
    /// Adopts the steady state under constant block `power`.
    fn steady_state(&mut self, power: &[f64]);
    /// Advances the transient state by `dt` seconds under constant block
    /// `power`.
    fn advance(&mut self, power: &[f64], dt: f64);
    /// Number of block nodes.
    fn block_count(&self) -> usize;
}

impl ThermalBackend for ThermalSolver {
    fn block_temperatures(&self) -> &[f64] {
        ThermalSolver::block_temperatures(self)
    }

    fn node_temperatures(&self) -> &[f64] {
        self.temperatures()
    }

    fn set_node_temperatures(&mut self, t: Vec<f64>) {
        self.set_temperatures(t);
    }

    fn steady_state(&mut self, power: &[f64]) {
        self.set_steady_state(power);
    }

    fn advance(&mut self, power: &[f64], dt: f64) {
        ThermalSolver::advance(self, power, dt);
    }

    fn block_count(&self) -> usize {
        self.network().block_count()
    }
}

impl ThermalBackend for ExpPropagator {
    fn block_temperatures(&self) -> &[f64] {
        ExpPropagator::block_temperatures(self)
    }

    fn node_temperatures(&self) -> &[f64] {
        self.temperatures()
    }

    fn set_node_temperatures(&mut self, t: Vec<f64>) {
        self.set_temperatures(t);
    }

    fn steady_state(&mut self, power: &[f64]) {
        self.set_steady_state(power);
    }

    fn advance(&mut self, power: &[f64], dt: f64) {
        ExpPropagator::advance(self, power, dt);
    }

    fn block_count(&self) -> usize {
        self.network().block_count()
    }
}

/// What a [`DtmPolicy`] asks the engine to do for the next interval.
///
/// Each variant maps onto one of the mechanisms the paper's §4 names as
/// the design space for handling thermal emergencies; the
/// [`IntervalLoopStage`](super::IntervalLoopStage) translates it into the
/// corresponding simulator / power-model hooks before running the
/// interval. Actions are not sticky: a policy that wants to stay engaged
/// returns the same action again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DtmAction {
    /// Run at the nominal operating point with every hook released.
    Nominal,
    /// Stretch the interval's wall-clock time by `1/factor` at unchanged
    /// voltage (the classic halve-the-clock emergency response; first-order
    /// frequency scaling). `factor` must lie in `(0, 1)`.
    Throttle(f64),
    /// Run at a scaled global (V, f) operating point: dynamic energy drops
    /// by `v_scale²`, leakage is recomputed at the scaled voltage, and the
    /// uncore gets relatively closer by `f_scale`.
    Dvfs {
        /// Core frequency as a fraction of nominal, in `(0, 1]`.
        f_scale: f64,
        /// Supply voltage as a fraction of nominal, in `(0, 1]`.
        v_scale: f64,
    },
    /// Gate the fetch unit to `open` of every `period` cycles (fetch
    /// toggling): front-end activity density falls at an IPC cost.
    FetchGate {
        /// Cycles per period the fetch unit is enabled.
        open: u32,
        /// Period of the gating pattern in cycles.
        period: u32,
    },
    /// Steer dispatch toward the backends fed by this frontend partition,
    /// draining rename/commit activity away from the hotter partition.
    MigrateTo(usize),
}

/// A dynamic-thermal-management policy the interval loop consults once per
/// interval.
///
/// [`EmergencyController`] is the built-in throttle;
/// [`GlobalDvfsController`](crate::dtm::GlobalDvfsController),
/// [`FetchGateController`](crate::dtm::FetchGateController) and
/// [`MigrationController`](crate::dtm::MigrationController) cover the rest
/// of the paper's design space. Custom policies implement this trait and
/// plug into [`CoupledEngine::with_dtm`](super::CoupledEngine::with_dtm).
pub trait DtmPolicy {
    /// Observes end-of-interval block temperatures and picks the action
    /// for the next interval.
    fn decide(&mut self, temps_c: &[f64]) -> DtmAction;
    /// Distinct emergencies triggered so far.
    fn triggers(&self) -> u64;
    /// Intervals spent under a non-nominal action so far.
    fn throttled_intervals(&self) -> u64;
}

impl DtmPolicy for EmergencyController {
    fn decide(&mut self, temps_c: &[f64]) -> DtmAction {
        let factor = self.observe(temps_c);
        if factor < 1.0 {
            DtmAction::Throttle(factor)
        } else {
            DtmAction::Nominal
        }
    }

    fn triggers(&self) -> u64 {
        EmergencyController::triggers(self)
    }

    fn throttled_intervals(&self) -> u64 {
        EmergencyController::throttled_intervals(self)
    }
}
