//! Lockstep batched replay: advancing a whole cohort of replay-mode sweep
//! cells through one shared [`BatchPropagator`], two mat-mats per interval
//! instead of `2N` mat-vecs.
//!
//! All cells of a sweep grid that share a machine shape share the *same*
//! thermal network — and therefore the same `(Φ, Ψ)` propagator pair for
//! any given step size. The [`BatchScheduler`] exploits this: the sweep
//! executor groups replay-mode cells by (floorplan fingerprint, nominal
//! step) into cohorts, and the scheduler multiplexes their per-cell replay
//! interval streams into one lockstep loop. Each lane (cell) keeps its own
//! [`EngineCx`] — power model, temperature tracker, DTM controller,
//! accumulators — but the thermal advance routes through one column-major
//! state matrix, so every propagator row streams from memory once per
//! interval for the whole cohort.
//!
//! # Bit-identity
//!
//! A batched cell's outcome is **bit-identical** to its serial replay:
//! the per-interval arithmetic below is the
//! [`ReplayLoopStage`](super::ReplayLoopStage) loop verbatim (same power
//! assembly, same accounting, same tracker and DTM call order per lane),
//! and the thermal columns inherit the [`BatchPropagator`] bit-identity
//! contract. Lanes whose `dt` momentarily diverges (throttle-stretched
//! intervals, a shorter trace) advance as per-`dt` column groups, so a
//! lane can never perturb another's summation order.
//!
//! # Fault isolation
//!
//! Columns are arithmetically independent, so a failing lane (a corrupt
//! interval record, a replay-incompatible DTM action) records its error
//! and simply drops out of the column selection; the surviving lanes'
//! bits are untouched — exactly as if the failed cell had never been in
//! the cohort.

use std::sync::Arc;
use std::time::Instant;

use distfront_power::BlockId;
use distfront_thermal::{BatchPropagator, Floorplan, ThermalNetwork};
use distfront_trace::record::ActivityTrace;
use distfront_trace::Workload;

use super::context::EngineCx;
use super::coupled::finish;
use super::replay::{apply_power_action, select_point, unflatten_for, ReplayPilotStage};
use super::stages::WarmStartStage;
use super::sweep::{CellOutcome, WarmStartCache};
use super::traits::{DtmAction, Stage};
use super::EngineError;
use crate::experiment::ExperimentConfig;
use crate::runner::AppResult;

/// One cohort member mid-flight: its engine context plus the lockstep
/// bookkeeping the scheduler threads through the interval loop.
struct Lane<'a> {
    /// Position in the cohort's member list (and batch column index).
    member: usize,
    /// Flat cell index into the sweep grid.
    cell: usize,
    cx: EngineCx<'a>,
    trace: Arc<ActivityTrace>,
    /// The DTM action decided at the end of the previous interval.
    action: DtmAction,
    /// Set when the lane finishes (or fails); a set lane leaves the
    /// column selection.
    result: Option<Result<AppResult, EngineError>>,
}

/// Runs a cohort of replay-mode cells in lockstep over one shared
/// [`BatchPropagator`]; see the module docs for the contract.
#[derive(Debug)]
pub struct BatchScheduler;

impl BatchScheduler {
    /// Replays every `(cell index, trace)` member in lockstep and returns
    /// one [`CellOutcome`] per member, in member order.
    ///
    /// Every member must share the cohort invariants the sweep executor
    /// grouped by — same machine shape (hence floorplan and thermal
    /// network) and a validated trace for its `(config, workload)` cell.
    /// Pilot and warm start run per lane through the regular stages (the
    /// shared `cache` sees the same keys as serial execution), then the
    /// interval streams advance together.
    pub fn run_cohort<'a>(
        configs: &'a [ExperimentConfig],
        workloads: &'a [Workload],
        members: &[(usize, Arc<ActivityTrace>)],
        cache: Arc<WarmStartCache>,
    ) -> Vec<CellOutcome> {
        let started = Instant::now();
        let n_apps = workloads.len().max(1);
        let mut outcomes: Vec<Option<CellOutcome>> = (0..members.len()).map(|_| None).collect();
        let mut lanes: Vec<Lane<'a>> = Vec::new();

        // Per-lane prologue: context build, replay pilot, warm start —
        // the same pre-loop pipeline as a serial replay, so warm-cache
        // keys, hits and failure modes are identical.
        for (m, (cell, trace)) in members.iter().enumerate() {
            let cfg = &configs[cell / n_apps];
            let workload = &workloads[cell % n_apps];
            let mut cx = match EngineCx::build(cfg, workload, None, None) {
                Ok(cx) => cx,
                Err(e) => {
                    // A build failure never reaches the replay pipeline;
                    // mirror the serial path's default stats.
                    outcomes[m] = Some(cell_outcome(
                        *cell,
                        n_apps,
                        cfg,
                        workload,
                        Err(e),
                        &started,
                        false,
                        false,
                    ));
                    continue;
                }
            };
            let mut pilot = ReplayPilotStage::new(Arc::clone(trace));
            let mut warm = WarmStartStage::with_cache(Arc::clone(&cache));
            let prologue = pilot.run(&mut cx).and_then(|()| warm.run(&mut cx));
            if let Err(e) = prologue {
                let hit = cx.warm_start_hit;
                outcomes[m] = Some(cell_outcome(
                    *cell,
                    n_apps,
                    cfg,
                    workload,
                    Err(e),
                    &started,
                    hit,
                    true,
                ));
                continue;
            }
            lanes.push(Lane {
                member: m,
                cell: *cell,
                cx,
                trace: Arc::clone(trace),
                action: DtmAction::Nominal,
                result: None,
            });
        }

        if !lanes.is_empty() {
            run_lockstep(&mut lanes);
        }

        for lane in lanes {
            let cfg = &configs[lane.cell / n_apps];
            let workload = &workloads[lane.cell % n_apps];
            let result = lane.result.expect("the lockstep loop finalizes every lane");
            let hit = lane.cx.warm_start_hit;
            outcomes[lane.member] = Some(cell_outcome(
                lane.cell, n_apps, cfg, workload, result, &started, hit, true,
            ));
        }
        outcomes
            .into_iter()
            .map(|o| o.expect("every member produces an outcome"))
            .collect()
    }
}

/// The lockstep interval loop: per-lane power assembly (the serial replay
/// loop's arithmetic verbatim), then the cohort's thermal advance as
/// per-`dt` column groups, two half-steps per interval.
fn run_lockstep(lanes: &mut [Lane<'_>]) {
    let machine = lanes[0].cx.machine;
    let fp = Floorplan::for_machine(machine);
    let net = ThermalNetwork::from_floorplan(&fp, &lanes[0].cx.pkg);
    let nb = net.block_count();
    let mut batch = BatchPropagator::new(net, lanes.len());
    for (j, lane) in lanes.iter().enumerate() {
        batch.set_column(j, lane.cx.thermal.node_temperatures());
    }

    let mut powers = vec![0.0f64; nb * lanes.len()];
    // Lanes advancing this interval: column index, wall-clock dt, and the
    // selected operating point's `done` flag (captured before the DTM
    // decision overwrites the action that selected it).
    let mut advancing: Vec<(usize, f64, bool)> = Vec::with_capacity(lanes.len());
    // Column groups per half-step size (throttled lanes stretch apart).
    let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
    let mut k = 0usize;
    loop {
        advancing.clear();
        for (j, lane) in lanes.iter_mut().enumerate() {
            if lane.result.is_some() {
                continue;
            }
            let rec = &lane.trace.intervals[k];
            let point = match select_point(&lane.trace.meta, rec, lane.action) {
                Ok(point) => point,
                Err(e) => {
                    lane.result = Some(Err(e));
                    continue;
                }
            };
            apply_power_action(&mut lane.cx, lane.action);
            let act = match unflatten_for(lane.cx.machine, &point.counters) {
                Ok(act) => act,
                Err(e) => {
                    lane.result = Some(Err(e));
                    continue;
                }
            };
            let gated: Vec<BlockId> = rec.gated_bank.map(BlockId::TcBank).into_iter().collect();
            let temps_now = batch.block_column(j).to_vec();
            let mut power = lane.cx.model.total_power(&act, &temps_now, &gated);
            for (p, i) in power.iter_mut().zip(&lane.cx.idle) {
                *p += i;
            }
            for g in &gated {
                power[lane.cx.machine.index_of(*g)] = 0.0;
            }
            let dt = act.cycles as f64 / lane.cx.model.effective_frequency_hz();
            lane.cx.power_time_sum += power.iter().sum::<f64>() * dt;
            lane.cx.time_sum += dt;
            powers[j * nb..(j + 1) * nb].copy_from_slice(&power);
            advancing.push((j, dt, point.done));
        }
        if advancing.is_empty() {
            break;
        }

        // Group columns by the exact half-step bits: the common (no-DTM)
        // case is a single group — one mat-mat pair for the whole cohort.
        groups.clear();
        for &(j, dt, _) in &advancing {
            let bits = (dt / 2.0).to_bits();
            match groups.iter_mut().find(|(b, _)| *b == bits) {
                Some((_, cols)) => cols.push(j),
                None => groups.push((bits, vec![j])),
            }
        }
        for _half in 0..2 {
            for (bits, cols) in &groups {
                batch.advance_columns(&powers, f64::from_bits(*bits), cols);
            }
            for &(j, dt, _) in &advancing {
                lanes[j].cx.tracker.record(batch.block_column(j), dt / 2.0);
            }
        }

        for &(j, _, done) in &advancing {
            let lane = &mut lanes[j];
            lane.cx.tracker.end_interval();
            if let Some(ctrl) = &mut lane.cx.dtm {
                lane.action = ctrl.decide(batch.block_column(j));
            }
            if done || k + 1 == lane.trace.intervals.len() {
                lane.cx
                    .thermal
                    .set_node_temperatures(batch.column(j).to_vec());
                lane.cx.replay_finals = Some(lane.trace.finals);
                lane.result = Some(finish(&lane.cx));
            }
        }
        k += 1;
    }
}

#[allow(clippy::too_many_arguments)]
fn cell_outcome(
    cell: usize,
    n_apps: usize,
    cfg: &ExperimentConfig,
    workload: &Workload,
    result: Result<AppResult, EngineError>,
    started: &Instant,
    warm_hit: bool,
    replayed: bool,
) -> CellOutcome {
    CellOutcome {
        config: cell / n_apps,
        app: cell % n_apps,
        config_name: cfg.name,
        app_name: workload.name(),
        result,
        wall_time_s: started.elapsed().as_secs_f64(),
        warm_hit,
        replayed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dtm::DvfsPolicy;
    use crate::emergency::EmergencyPolicy;
    use crate::engine::{SweepReport, SweepRunner, TraceMode, TraceStore};
    use crate::experiment::DtmSpec;
    use distfront_trace::record::PointKey;
    use distfront_trace::AppProfile;

    fn apps() -> Vec<AppProfile> {
        vec![
            AppProfile::test_tiny(),
            *AppProfile::by_name("gzip").unwrap(),
            *AppProfile::by_name("mcf").unwrap(),
        ]
    }

    /// Records `configs` × `apps` serially and returns the filled store.
    fn record(configs: &[ExperimentConfig], apps: &[AppProfile]) -> Arc<TraceStore> {
        let store = Arc::new(TraceStore::new());
        let report = SweepRunner::serial()
            .with_trace_mode(TraceMode::Record(Arc::clone(&store)))
            .try_grid(configs, apps);
        assert!(report.is_complete(), "recording must succeed");
        store
    }

    fn replay_report(
        configs: &[ExperimentConfig],
        apps: &[AppProfile],
        store: &Arc<TraceStore>,
        threads: usize,
        batch: bool,
    ) -> SweepReport {
        SweepRunner::with_threads(threads)
            .with_trace_mode(TraceMode::Replay(Arc::clone(store)))
            .with_batch(batch)
            .try_grid(configs, apps)
    }

    #[test]
    fn batched_replay_is_bit_identical_to_serial_replay_at_any_worker_count() {
        let apps = apps();
        let dvfs = ExperimentConfig::baseline()
            .with_uops(60_000)
            .with_dtm(DtmSpec::GlobalDvfs(DvfsPolicy::with_trip(50.0)));
        let record_cfgs = vec![
            ExperimentConfig::baseline().with_uops(60_000),
            dvfs.clone(),
            ExperimentConfig::bank_hopping().with_uops(60_000),
        ];
        let store = record(&record_cfgs, &apps);
        // The replay grid adds a throttling DTM variant sharing the
        // baseline's name (the record-once / replay-many convention), so
        // one cohort mixes throttle-stretched, DVFS-stretched and nominal
        // step sizes — and lanes replaying from traces with *different*
        // point families (nominal-only vs the DVFS pair).
        let replay_cfgs = vec![
            ExperimentConfig::baseline().with_uops(60_000),
            ExperimentConfig::baseline()
                .with_uops(60_000)
                .with_dtm(DtmSpec::Emergency(EmergencyPolicy::with_threshold(50.0))),
            dvfs,
            ExperimentConfig::bank_hopping().with_uops(60_000),
        ];
        let serial = replay_report(&replay_cfgs, &apps, &store, 1, false);
        assert_eq!(serial.replayed(), replay_cfgs.len() * apps.len());
        // The DTM variant actually throttles, so the cohort's step-size
        // grouping is exercised, not just the single-group fast path.
        assert!(
            serial
                .row(1)
                .iter()
                .any(|c| c.result.as_ref().unwrap().throttled_intervals > 0),
            "the emergency policy never engaged; lower the trip"
        );
        for threads in [1, 2, 5] {
            let batched = replay_report(&replay_cfgs, &apps, &store, threads, true);
            assert_eq!(batched, serial, "batched diverged at {threads} workers");
            assert_eq!(batched.replayed(), serial.replayed());
        }
    }

    #[test]
    fn lane_failure_mid_cohort_leaves_other_cells_byte_identical() {
        let apps = apps();
        let cfgs = vec![ExperimentConfig::baseline().with_uops(60_000)];
        let store = record(&cfgs, &apps);
        let clean = replay_report(&cfgs, &apps, &store, 1, true);
        assert!(clean.is_complete());

        // Corrupt the gzip trace mid-stream: a truncated counter record
        // passes validation (which only shapes-checks the pilot) but fails
        // unflatten inside the lockstep loop, after the cohort has already
        // advanced together — the harshest point to drop a lane.
        let broken = {
            let mut t = (*store.get("baseline", "gzip", &[PointKey::Nominal]).unwrap()).clone();
            assert!(t.intervals.len() >= 2, "need a mid-run interval to corrupt");
            t.intervals[1].points[0].counters.truncate(3);
            t
        };
        store.insert(broken);

        let faulted = replay_report(&cfgs, &apps, &store, 1, true);
        assert_eq!(faulted.failed(), 1);
        let gzip = faulted.cell(0, 1);
        assert!(
            matches!(&gzip.result, Err(EngineError::ReplayIncompatible(_))),
            "{:?}",
            gzip.result
        );
        for (a, app) in apps.iter().enumerate() {
            if a == 1 {
                continue;
            }
            let survivor = faulted.cell(0, a).result.as_ref().unwrap();
            let reference = clean.cell(0, a).result.as_ref().unwrap();
            assert_eq!(survivor, reference, "cell {} perturbed", app.name);
            // Byte-identical, not merely equal: the CSV row a scenario
            // emitter would write is the same string.
            assert_eq!(
                crate::scenarios::csv_row("baseline", survivor),
                crate::scenarios::csv_row("baseline", reference),
            );
        }
    }

    #[test]
    fn batch_flag_is_inert_outside_replay_mode() {
        let cfgs = vec![ExperimentConfig::baseline().with_uops(40_000)];
        let apps = vec![AppProfile::test_tiny()];
        let live = SweepRunner::serial().try_grid(&cfgs, &apps);
        let live_batch = SweepRunner::serial()
            .with_batch(true)
            .try_grid(&cfgs, &apps);
        assert_eq!(live, live_batch);
        assert_eq!(live_batch.replayed(), 0);
    }
}
