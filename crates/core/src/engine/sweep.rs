//! Parallel execution of an application × configuration grid, plus the
//! sharded warm-start cache shared between its cells.
//!
//! Execution is *fault-tolerant*: every cell of a [`SweepRunner::try_grid`]
//! is an independent [`Result`], so one non-converged configuration aborts
//! exactly one [`CellOutcome`] instead of the whole sweep. The strict,
//! panicking surface survives behind [`SweepReport::strict`] (which is all
//! [`SweepRunner::grid`] is).

use std::cell::RefCell;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::BuildHasher;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Instant;

use distfront_power::{LeakageModel, Machine};
use distfront_thermal::Integrator;
use distfront_trace::record::{ActivityTrace, PointKey};
use distfront_trace::{AppProfile, Workload};

use super::batch::BatchScheduler;
use super::coupled::CoupledEngine;
use super::replay::ReplayBackend;
use super::EngineError;
use crate::experiment::ExperimentConfig;
use crate::runner::AppResult;
use crate::store::DurableStore;

/// Packs a cache key — the machine shape, the exact bits of the leakage
/// model, and the exact bits of the nominal power profile — into one
/// `u64` slice:
/// `[partitions, backends, tc_banks, leakage_bits×4, nominal_bits...]`.
///
/// The warm-start fixed point is a pure function of these (the package is
/// a constant), so an exact-bit key makes a cache hit indistinguishable
/// from a cold solve. The leakage model is part of the key because it is
/// per-configuration: two configurations identical in shape and nominal
/// power but differing in silicon must never share a warm start. Packing
/// into a flat slice lets the map be keyed by `Box<[u64]>` and *probed*
/// by `&[u64]` (via `Borrow<[u64]>`), so a lookup never allocates: the
/// slice is built in a thread-local scratch buffer.
fn pack_key(machine: Machine, leakage: &LeakageModel, nominal: &[f64], buf: &mut Vec<u64>) {
    buf.clear();
    buf.reserve(7 + nominal.len());
    buf.push(machine.partitions as u64);
    buf.push(machine.backends as u64);
    buf.push(machine.tc_banks as u64);
    buf.push(leakage.ratio_at_ambient.to_bits());
    buf.push(leakage.ambient_c.to_bits());
    buf.push(leakage.doubling_celsius.to_bits());
    buf.push(leakage.emergency_c.to_bits());
    buf.extend(nominal.iter().map(|x| x.to_bits()));
}

thread_local! {
    static KEY_SCRATCH: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// One cache slot: `None` while the first computation for its key is in
/// flight, `Some` once a converged state is stored. The slot mutex — not
/// the shard mutex — serializes same-key computations, so two cells
/// missing on the same key perform one cold solve while cells with other
/// keys pass by untouched.
#[derive(Debug, Default)]
struct Slot(Mutex<Option<Arc<Vec<f64>>>>);

/// One key-hash shard of the cache map.
type Shard = Mutex<HashMap<Box<[u64]>, Arc<Slot>>>;

/// The streaming callback [`SweepRunner::with_on_cell`] installs.
type CellCallback = Box<dyn Fn(&CellOutcome) + Send + Sync>;

/// Default shard count: enough that a full-width sweep on a large host
/// rarely has two workers hashing into the same shard at once.
const DEFAULT_SHARDS: usize = 16;

/// Largest lockstep cohort one task advances. Bounds the batch state
/// matrix (`n_nodes × cohort`) and keeps enough independent tasks for the
/// worker pool to load-balance; column counts beyond this see no further
/// per-cell gain from the mat-mat kernel anyway.
const MAX_COHORT: usize = 32;

/// One schedulable unit of a sweep: a single grid cell, or a lockstep
/// cohort of replay-mode cells sharing a machine shape that the
/// [`BatchScheduler`] advances through one batched propagator.
enum Task {
    Cell(usize),
    Cohort(Vec<(usize, Arc<ActivityTrace>)>),
}

impl Task {
    /// The lowest grid index the task covers — tasks are ordered by this
    /// so a serial batched sweep still streams outcomes near grid order.
    fn first_cell(&self) -> usize {
        match self {
            Task::Cell(i) => *i,
            Task::Cohort(members) => members.first().map_or(usize::MAX, |(i, _)| *i),
        }
    }
}

/// Shares converged steady-state warm starts between engines.
///
/// Keyed by (machine shape, leakage model, nominal power profile) — the
/// warm-start fixed point is a pure function of exactly those inputs, and
/// the key stores the leakage parameters' and power profile's exact bits,
/// so a hit is bit-identical to solving cold. The map is split into key-hash shards, each behind its own lock,
/// and [`get_or_compute`](Self::get_or_compute) holds a shard lock only
/// for the map probe itself: cold solves run under a per-key slot lock, so
/// concurrent misses on *different* keys never contend and concurrent
/// misses on the *same* key solve once. One cache is shared by every cell
/// of a [`SweepRunner`] grid.
#[derive(Debug)]
pub struct WarmStartCache {
    shards: Box<[Shard]>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for WarmStartCache {
    fn default() -> Self {
        Self::new()
    }
}

impl WarmStartCache {
    /// An empty cache with the default shard count.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// An empty cache split into `shards` key-hash shards.
    ///
    /// The shard count is a pure concurrency knob: hit/miss totals and the
    /// states returned are identical for any count (a property test pins
    /// this).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "a cache needs at least one shard");
        WarmStartCache {
            shards: (0..shards).map(|_| Mutex::default()).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The number of key-hash shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, key: &[u64]) -> &Shard {
        &self.shards[(self.hasher.hash_one(key) as usize) % self.shards.len()]
    }

    /// Returns the slot for the packed key, inserting an empty one first if
    /// the key is new. The shard lock is held only for this probe.
    fn slot_of(&self, key: &[u64]) -> Arc<Slot> {
        let mut map = self.shard_of(key).lock().expect("cache poisoned");
        match map.get(key) {
            Some(slot) => Arc::clone(slot),
            None => {
                let slot = Arc::new(Slot::default());
                map.insert(key.into(), Arc::clone(&slot));
                slot
            }
        }
    }

    /// Removes `key`'s entry if it still holds `slot` un-filled, so a
    /// failed computation never leaves a key claimed. The slot is probed
    /// with `try_lock` to keep the shard critical section O(probe): an
    /// unobtainable slot lock means a racer is mid-solve on the key, so
    /// the entry is in use and must not be evicted (if that solve also
    /// fails, the racer's own eviction retries).
    fn evict_empty(&self, key: &[u64], slot: &Arc<Slot>) {
        let mut map = self.shard_of(key).lock().expect("cache poisoned");
        if let Some(existing) = map.get(key) {
            let unfilled = Arc::ptr_eq(existing, slot)
                && matches!(existing.0.try_lock(), Ok(state) if state.is_none());
            if unfilled {
                map.remove(key);
            }
        }
    }

    /// Looks up the converged node temperatures for a (machine shape,
    /// leakage model, nominal power profile), solving cold via `compute`
    /// on a miss.
    ///
    /// Returns the state plus whether it was served from the cache. The
    /// single-entry design fixes two flaws of a lookup-then-insert pair:
    /// the key is hashed and the map locked once instead of twice, and two
    /// threads missing on the same key perform **one** cold solve — the
    /// second blocks on the key's slot and takes the first's state as a
    /// hit.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error; a failed computation leaves the cache
    /// without the key (so a later attempt solves cold again) and counts
    /// as a miss.
    pub fn get_or_compute<E>(
        &self,
        machine: Machine,
        leakage: &LeakageModel,
        nominal: &[f64],
        compute: impl FnOnce() -> Result<Vec<f64>, E>,
    ) -> Result<(Arc<Vec<f64>>, bool), E> {
        let slot = KEY_SCRATCH.with(|scratch| {
            let mut buf = scratch.borrow_mut();
            pack_key(machine, leakage, nominal, &mut buf);
            self.slot_of(&buf)
        });
        let mut state = slot.0.lock().expect("cache poisoned");
        if let Some(v) = state.as_ref() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(v), true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        match compute() {
            Ok(v) => {
                let v = Arc::new(v);
                *state = Some(Arc::clone(&v));
                drop(state);
                // Re-link the filled slot: a racer's failed solve may have
                // evicted the key while this solve ran (its evict_empty can
                // win the try_lock before this thread locks the slot), and
                // without the re-link this success would fill an orphaned
                // slot the map can no longer reach — every later lookup
                // would solve cold. Lock order stays shard-only here (the
                // slot guard is already dropped).
                KEY_SCRATCH.with(|scratch| {
                    let mut buf = scratch.borrow_mut();
                    pack_key(machine, leakage, nominal, &mut buf);
                    let mut map = self.shard_of(&buf).lock().expect("cache poisoned");
                    if !map.contains_key(buf.as_slice()) {
                        map.insert(buf[..].into(), Arc::clone(&slot));
                    }
                });
                Ok((v, false))
            }
            Err(e) => {
                drop(state);
                KEY_SCRATCH.with(|scratch| {
                    let mut buf = scratch.borrow_mut();
                    pack_key(machine, leakage, nominal, &mut buf);
                    self.evict_empty(&buf, &slot);
                });
                Err(e)
            }
        }
    }

    /// Distinct warm starts stored (in-flight cold solves included).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache (including lookups that waited for
    /// another thread's in-flight solve of the same key).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to solve cold.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Shares recorded [`ActivityTrace`]s between sweep runs: a recording
/// sweep inserts one trace per successful cell, a replaying sweep looks
/// cells up by `(configuration name, workload name)` plus the
/// **capability set** the replay requires — under the convention that a
/// configuration's name identifies its core (uarch) side, which is
/// exactly what two configurations sweeping only the power/thermal/DTM
/// side share.
///
/// Keys include [`TraceMeta::capability_id`], so a nominal-only recording
/// and a DVFS-family recording of the same cell coexist instead of
/// clobbering each other, and a lookup that *needs* core-perturbing
/// points can never be satisfied by a power-only trace: [`get`](Self::get)
/// returns only traces whose recorded point family covers the request.
///
/// A store built with [`persistent`](Self::persistent) is additionally
/// disk-backed: it starts pre-seeded from a [`DurableStore`] and appends
/// each *novel* recording (new key, or changed bytes under an existing
/// key) back to it as `.dft` payloads — behind the exact same
/// `insert`/`get`/coverage contract, so record/replay never knows
/// whether a trace survived a restart. Appends become durable at the
/// owner's [`DurableStore::flush`] boundary; an append failure is logged
/// and degrades that trace to in-memory life.
///
/// [`TraceMeta::capability_id`]: distfront_trace::record::TraceMeta::capability_id
#[derive(Debug, Default)]
pub struct TraceStore {
    map: Mutex<HashMap<(String, String, String), Arc<ActivityTrace>>>,
    store: Option<Arc<DurableStore>>,
}

impl TraceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// A disk-backed store seeded with `loaded` traces recovered from
    /// `store` (append order, so the newest recording of a key wins).
    pub fn persistent(store: Arc<DurableStore>, loaded: Vec<ActivityTrace>) -> Self {
        let traces = TraceStore {
            map: Mutex::new(HashMap::new()),
            store: None,
        };
        for trace in loaded {
            traces.insert(trace);
        }
        TraceStore {
            store: Some(store),
            ..traces
        }
    }

    /// Inserts a trace under its recorded `(config, workload, capability)`
    /// key, replacing any previous recording of the same cell *with the
    /// same capability set* (recordings with different families coexist).
    /// Disk-backed stores append the trace unless an identical recording
    /// already sits under the key.
    pub fn insert(&self, trace: ActivityTrace) {
        let key = (
            trace.meta.config.clone(),
            trace.meta.workload.clone(),
            trace.meta.capability_id(),
        );
        let mut map = self.map.lock().expect("trace store poisoned");
        let novel = map.get(&key).is_none_or(|prev| **prev != trace);
        if novel {
            if let Some(store) = &self.store {
                if let Err(e) = store.append_trace(&trace) {
                    eprintln!(
                        "[sweepd] trace persist failed {}/{}/{}: {e}",
                        key.0, key.1, key.2
                    );
                }
            }
        }
        map.insert(key, Arc::new(trace));
    }

    /// Looks up a trace recorded for a configuration × workload cell whose
    /// point family covers every key in `required` (tainted recordings
    /// never match). When several qualify, the smallest covering family
    /// wins (ties broken by capability id) — a deterministic pick, so
    /// sweep results never depend on insertion order.
    pub fn get(
        &self,
        config: &str,
        workload: &str,
        required: &[PointKey],
    ) -> Option<Arc<ActivityTrace>> {
        let map = self.map.lock().expect("trace store poisoned");
        map.iter()
            .filter(|((c, w, _), t)| c == config && w == workload && t.meta.covers(required))
            .min_by_key(|((_, _, cap), t)| (t.meta.points.len(), cap.clone()))
            .map(|(_, t)| Arc::clone(t))
    }

    /// Number of stored traces.
    pub fn len(&self) -> usize {
        self.map.lock().expect("trace store poisoned").len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every stored trace, ordered by key (deterministic, for writing
    /// trace directories).
    pub fn traces(&self) -> Vec<Arc<ActivityTrace>> {
        let map = self.map.lock().expect("trace store poisoned");
        let mut entries: Vec<_> = map.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        entries.into_iter().map(|(_, t)| Arc::clone(t)).collect()
    }
}

/// How a sweep interacts with recorded traces.
#[derive(Debug, Clone, Default)]
pub enum TraceMode {
    /// Simulate every cell live (the default).
    #[default]
    Live,
    /// Simulate live and record each successful cell into the store.
    /// Cells whose configuration makes the recording unreplayable (a
    /// core-perturbing DTM policy) still run live but are not stored.
    Record(Arc<TraceStore>),
    /// Replay cells from the store where a compatible trace exists; fall
    /// back to live simulation (leaving the store untouched) otherwise.
    Replay(Arc<TraceStore>),
}

/// The outcome of one grid cell: the engine's result plus per-cell
/// execution metadata (wall time, warm-cache hit, replay provenance).
///
/// Equality ignores the measurement metadata — two outcomes are equal when
/// their coordinates and engine results are, which is what the engine's
/// bit-identity guarantee is about (wall time is never deterministic, and
/// a replayed cell is by construction equal to its live counterpart).
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// Configuration (row) index into the sweep's `configs`.
    pub config: usize,
    /// Application (column) index into the sweep's `apps`.
    pub app: usize,
    /// The configuration's name.
    pub config_name: &'static str,
    /// The workload's name.
    pub app_name: &'static str,
    /// What the engine produced for this cell.
    pub result: Result<AppResult, EngineError>,
    /// Wall-clock seconds this cell took (measurement metadata; excluded
    /// from equality).
    pub wall_time_s: f64,
    /// Whether the cell's warm start was served from the shared cache
    /// (excluded from equality: it depends on cell scheduling).
    pub warm_hit: bool,
    /// Whether the cell was driven from a recorded trace instead of the
    /// live core simulator (excluded from equality: replay is exactly the
    /// claim that the results match).
    pub replayed: bool,
}

impl CellOutcome {
    /// `"config/app"`, the coordinate label used in error reports.
    pub fn label(&self) -> String {
        format!("{}/{}", self.config_name, self.app_name)
    }

    /// The one-line failure description every strict consumer panics
    /// with: `"engine failed for config/app: error"`. Empty-string free:
    /// only meaningful for failed cells.
    pub fn failure_line(&self) -> String {
        match &self.result {
            Ok(_) => format!("cell {} did not fail", self.label()),
            Err(e) => format!("engine failed for {}: {e}", self.label()),
        }
    }
}

impl PartialEq for CellOutcome {
    fn eq(&self, other: &Self) -> bool {
        self.config == other.config && self.app == other.app && self.result == other.result
    }
}

/// The outcome of a whole sweep: one [`CellOutcome`] per (configuration,
/// application) pair, row-major, placed by index — never by completion
/// order — so serial and parallel reports of the same grid compare equal
/// (error cells included; per-cell wall times are excluded from equality).
///
/// # Examples
///
/// ```
/// use distfront::engine::SweepRunner;
/// use distfront::ExperimentConfig;
/// use distfront_trace::AppProfile;
///
/// let cfgs = [ExperimentConfig::baseline().with_uops(30_000)];
/// let apps = [AppProfile::test_tiny()];
/// let report = SweepRunner::new().try_grid(&cfgs, &apps);
/// assert!(report.is_complete());
/// assert!(report.cell(0, 0).result.is_ok());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    configs: usize,
    apps: usize,
    cells: Vec<CellOutcome>,
}

impl SweepReport {
    /// `(configuration count, application count)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.configs, self.apps)
    }

    /// All cells, row-major (`configs[0]` × every app first).
    pub fn cells(&self) -> &[CellOutcome] {
        &self.cells
    }

    /// The cell for `configs[config]` × `apps[app]`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn cell(&self, config: usize, app: usize) -> &CellOutcome {
        assert!(
            config < self.configs && app < self.apps,
            "cell out of range"
        );
        &self.cells[config * self.apps + app]
    }

    /// One configuration's outcomes across every application.
    ///
    /// # Panics
    ///
    /// Panics if `config` is out of range.
    pub fn row(&self, config: usize) -> &[CellOutcome] {
        &self.cells[config * self.apps..(config + 1) * self.apps]
    }

    /// The cells that failed, in grid order.
    pub fn failures(&self) -> impl Iterator<Item = &CellOutcome> {
        self.cells.iter().filter(|c| c.result.is_err())
    }

    /// How many cells failed.
    pub fn failed(&self) -> usize {
        self.failures().count()
    }

    /// Whether every cell succeeded.
    pub fn is_complete(&self) -> bool {
        self.failed() == 0
    }

    /// How many cells' warm starts were served from the shared cache.
    pub fn warm_hits(&self) -> usize {
        self.cells.iter().filter(|c| c.warm_hit).count()
    }

    /// How many cells were driven from recorded traces.
    pub fn replayed(&self) -> usize {
        self.cells.iter().filter(|c| c.replayed).count()
    }

    /// Total CPU seconds spent across all cells (≈ `workers ×` the sweep's
    /// wall time when the grid is balanced).
    pub fn total_cell_time_s(&self) -> f64 {
        self.cells.iter().map(|c| c.wall_time_s).sum()
    }

    /// Reassembles a report from per-cell outcomes produced out of band —
    /// the merge point for sharded execution: the outcomes of several
    /// [`SweepRunner::try_cells`] slices (in any order; shards complete
    /// independently) are placed back into their grid slots by index,
    /// exactly as `try_grid` places them, so a merged report compares
    /// equal to the serial run of the whole grid — error cells included.
    ///
    /// # Errors
    ///
    /// Returns a description of the first coverage violation: a cell
    /// whose coordinates fall outside the `configs × apps` grid, a
    /// duplicate cell, or a missing cell. Exactly-once coverage is the
    /// shard-merge contract; anything else means shards overlapped or a
    /// slice went missing, and silently merging would fabricate a report.
    pub fn assemble(
        configs: usize,
        apps: usize,
        cells: impl IntoIterator<Item = CellOutcome>,
    ) -> Result<SweepReport, String> {
        let mut flat: Vec<Option<CellOutcome>> = (0..configs * apps).map(|_| None).collect();
        for cell in cells {
            if cell.config >= configs || cell.app >= apps {
                return Err(format!(
                    "cell ({}, {}) outside the {configs}x{apps} grid",
                    cell.config, cell.app
                ));
            }
            let i = cell.config * apps + cell.app;
            if flat[i].is_some() {
                return Err(format!("duplicate cell ({}, {})", cell.config, cell.app));
            }
            flat[i] = Some(cell);
        }
        let cells = flat
            .into_iter()
            .enumerate()
            .map(|(i, c)| c.ok_or_else(|| format!("missing cell ({}, {})", i / apps, i % apps)))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(SweepReport {
            configs,
            apps,
            cells,
        })
    }

    /// The strict view: every cell's `AppResult`, as
    /// `result[config][app]`, panicking if any cell failed — the
    /// pre-fault-tolerance contract, for callers (figures, calibration)
    /// that cannot use a partial grid.
    ///
    /// # Panics
    ///
    /// Panics if any cell failed, listing every failed cell's coordinates
    /// and error.
    pub fn strict(self) -> Vec<Vec<AppResult>> {
        let failed: Vec<String> = self.failures().map(CellOutcome::failure_line).collect();
        assert!(
            failed.is_empty(),
            "{} of {} sweep cells failed:\n{}",
            failed.len(),
            self.cells.len(),
            failed.join("\n")
        );
        let apps = self.apps.max(1);
        let mut rows = Vec::with_capacity(self.configs);
        let mut cells = self.cells.into_iter();
        for _ in 0..self.configs {
            rows.push(
                cells
                    .by_ref()
                    .take(apps)
                    .map(|c| c.result.expect("failures checked above"))
                    .collect(),
            );
        }
        rows
    }
}

/// Executes an application × configuration grid, fanning cells out over
/// `std::thread::scope` workers.
///
/// Every cell is an independent [`CoupledEngine`] run — a pure function of
/// its (configuration, application) pair — so the grid parallelizes
/// embarrassingly and the output is **bit-identical to a serial double
/// loop** regardless of thread count or scheduling: results are written
/// into their grid slot by index, never in completion order. Cell failures
/// are part of that contract: [`try_grid`](Self::try_grid) returns a
/// [`SweepReport`] in which a failing cell is an `Err` *outcome*, not a
/// sweep-wide panic.
///
/// # Examples
///
/// ```
/// use distfront::engine::SweepRunner;
/// use distfront::ExperimentConfig;
/// use distfront_trace::AppProfile;
///
/// let cfgs = [ExperimentConfig::baseline().with_uops(30_000)];
/// let apps = [AppProfile::test_tiny()];
/// let parallel = SweepRunner::new().try_grid(&cfgs, &apps);
/// let serial = SweepRunner::serial().try_grid(&cfgs, &apps);
/// assert_eq!(parallel, serial);
/// ```
pub struct SweepRunner {
    threads: usize,
    cache: Arc<WarmStartCache>,
    on_cell: Option<CellCallback>,
    mode: TraceMode,
    batch: bool,
}

impl std::fmt::Debug for SweepRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepRunner")
            .field("threads", &self.threads)
            .field("cache", &self.cache)
            .field("on_cell", &self.on_cell.as_ref().map(|_| "…"))
            .field("mode", &self.mode)
            .field("batch", &self.batch)
            .finish()
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner using every available hardware thread.
    pub fn new() -> Self {
        let threads = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// A runner executing cells one at a time on the calling thread.
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// A runner with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "a sweep needs at least one worker");
        SweepRunner {
            threads,
            cache: Arc::new(WarmStartCache::new()),
            on_cell: None,
            mode: TraceMode::Live,
            batch: false,
        }
    }

    /// A runner sized from a [`JobSpec`](crate::job::JobSpec)'s
    /// scheduling fields — the unified construction path behind the
    /// one-shot CLI, the daemon's executors and the test harness. The
    /// legacy builder chain ([`with_threads`](Self::with_threads) →
    /// [`with_batch`](Self::with_batch) →
    /// [`with_trace_mode`](Self::with_trace_mode)) remains as a
    /// compatibility shim over the same fields; new call sites should
    /// construct a spec and come through here, then attach the runtime
    /// handles a pure-data spec cannot carry
    /// ([`with_warm_cache`](Self::with_warm_cache),
    /// [`with_trace_mode`](Self::with_trace_mode),
    /// [`with_on_cell`](Self::with_on_cell)).
    pub fn from_spec(spec: &crate::job::JobSpec) -> Self {
        let runner = if spec.workers == 0 {
            Self::new()
        } else {
            Self::with_threads(spec.workers)
        };
        runner.with_batch(spec.batch)
    }

    /// Replaces this runner's warm-start cache with a shared one, so the
    /// cache outlives the runner: the daemon hands every job's runner the
    /// same process-wide cache, which is what makes a second job's warm
    /// starts free. (A fresh runner owns a fresh cache; see
    /// [`warm_cache`](Self::warm_cache).)
    #[must_use]
    pub fn with_warm_cache(mut self, cache: Arc<WarmStartCache>) -> Self {
        self.cache = cache;
        self
    }

    /// Enables (or disables) lockstep batched replay: replay-mode cells
    /// sharing a machine shape are grouped into cohorts and advanced
    /// together through one shared batched propagator (see
    /// [`BatchScheduler`]), cutting the thermal advance from two mat-vecs
    /// per cell-interval to two mat-mats per cohort-interval.
    ///
    /// Purely a performance knob: batched reports compare equal —
    /// bit-identical cell results — to serial and parallel unbatched runs
    /// of the same grid. Cells that cannot batch (live fallback, RK4
    /// integrator, lone cohorts) run exactly as before; outside
    /// [`TraceMode::Replay`] the flag has no effect.
    #[must_use]
    pub fn with_batch(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// Selects how this runner's cells interact with recorded traces:
    /// live simulation (the default), record-into-store, or
    /// replay-from-store with per-cell live fallback.
    #[must_use]
    pub fn with_trace_mode(mut self, mode: TraceMode) -> Self {
        self.mode = mode;
        self
    }

    /// Streams cell outcomes as they complete: `f` is invoked once per
    /// cell, in *completion* order (which only equals grid order on a
    /// serial runner), from the thread that called
    /// [`try_grid`](Self::try_grid). Progress displays and incremental row
    /// emitters hang off this; the returned report is unaffected.
    #[must_use]
    pub fn with_on_cell(mut self, f: impl Fn(&CellOutcome) + Send + Sync + 'static) -> Self {
        self.on_cell = Some(Box::new(f));
        self
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The warm-start cache shared by this runner's cells (persists across
    /// [`grid`](Self::grid) calls, so repeated sweeps of overlapping
    /// configurations reuse each other's warm starts).
    pub fn warm_cache(&self) -> &Arc<WarmStartCache> {
        &self.cache
    }

    /// Runs every configuration over every application, fault-tolerantly:
    /// the report's `cell(c, a)` corresponds to `configs[c]` and `apps[a]`
    /// exactly as the serial nested loop would order them, and a failing
    /// cell is an `Err` outcome in its slot — every other cell still runs.
    pub fn try_grid(&self, configs: &[ExperimentConfig], apps: &[AppProfile]) -> SweepReport {
        let workloads: Vec<Workload> = apps.iter().map(|p| Workload::Single(*p)).collect();
        self.try_grid_workloads(configs, &workloads)
    }

    /// [`try_grid`](Self::try_grid) over arbitrary [`Workload`]s (single
    /// profiles and phased compositions mix freely in one suite).
    pub fn try_grid_workloads(
        &self,
        configs: &[ExperimentConfig],
        workloads: &[Workload],
    ) -> SweepReport {
        let cells = self.try_cells(configs, workloads, 0..configs.len() * workloads.len());
        SweepReport {
            configs: configs.len(),
            apps: workloads.len(),
            cells,
        }
    }

    /// Runs only the grid cells whose flat index
    /// (`config * workloads.len() + app`, row-major — the same order the
    /// report stores) falls in `range`, returning their outcomes in
    /// ascending index order. This is the shard primitive behind
    /// [`distfront::shard`](crate::shard): a contiguous slice of the grid
    /// runs in isolation, bit-identical to the same cells of a whole-grid
    /// run, and [`SweepReport::assemble`] puts the slices back together.
    ///
    /// # Panics
    ///
    /// Panics if `range` reaches past the grid's cell count.
    pub fn try_cells(
        &self,
        configs: &[ExperimentConfig],
        workloads: &[Workload],
        range: std::ops::Range<usize>,
    ) -> Vec<CellOutcome> {
        assert!(
            range.end <= configs.len() * workloads.len(),
            "cell range {range:?} reaches past the grid"
        );
        let start = range.start;
        let mut flat: Vec<Option<CellOutcome>> = (0..range.len()).map(|_| None).collect();
        let tasks = self.plan_tasks(configs, workloads, range);
        let workers = self.threads.min(tasks.len());
        if workers <= 1 {
            for task in &tasks {
                for outcome in self.run_task(configs, workloads, task) {
                    if let Some(cb) = &self.on_cell {
                        cb(&outcome);
                    }
                    let i = outcome.config * workloads.len() + outcome.app - start;
                    flat[i] = Some(outcome);
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<CellOutcome>();
            let tasks = &tasks;
            thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    scope.spawn(move || loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= tasks.len() {
                            break;
                        }
                        for outcome in self.run_task(configs, workloads, &tasks[t]) {
                            if tx.send(outcome).is_err() {
                                return;
                            }
                        }
                    });
                }
                drop(tx);
                for outcome in rx {
                    if let Some(cb) = &self.on_cell {
                        cb(&outcome);
                    }
                    let i = outcome.config * workloads.len() + outcome.app - start;
                    flat[i] = Some(outcome);
                }
            });
        }
        flat.into_iter()
            .map(|c| c.expect("worker died mid-sweep"))
            .collect()
    }

    /// Runs one configuration over a whole application suite,
    /// fault-tolerantly (a one-row [`try_grid`](Self::try_grid)).
    pub fn try_suite(&self, cfg: &ExperimentConfig, apps: &[AppProfile]) -> SweepReport {
        self.try_grid(std::slice::from_ref(cfg), apps)
    }

    /// Runs one configuration over a whole workload suite,
    /// fault-tolerantly (a one-row
    /// [`try_grid_workloads`](Self::try_grid_workloads)).
    pub fn try_suite_workloads(
        &self,
        cfg: &ExperimentConfig,
        workloads: &[Workload],
    ) -> SweepReport {
        self.try_grid_workloads(std::slice::from_ref(cfg), workloads)
    }

    /// The strict grid: `result[c][a]` corresponds to `configs[c]` and
    /// `apps[a]`, exactly as the serial nested loop would order them.
    /// Shorthand for [`try_grid`](Self::try_grid) followed by
    /// [`SweepReport::strict`].
    ///
    /// # Panics
    ///
    /// Panics if any cell's engine fails — an invalid configuration or a
    /// non-converged warm start (matching
    /// [`run_app`](crate::runner::run_app)) — listing every failed cell.
    pub fn grid(&self, configs: &[ExperimentConfig], apps: &[AppProfile]) -> Vec<Vec<AppResult>> {
        self.try_grid(configs, apps).strict()
    }

    /// Runs one configuration over a whole application suite (strict; see
    /// [`grid`](Self::grid)).
    ///
    /// # Panics
    ///
    /// Panics if any cell's engine fails.
    pub fn suite(&self, cfg: &ExperimentConfig, apps: &[AppProfile]) -> Vec<AppResult> {
        self.grid(std::slice::from_ref(cfg), apps)
            .pop()
            .expect("one configuration in, one row out")
    }

    /// Splits the grid cells in `range` into schedulable tasks: with
    /// batching off (or outside replay mode) every cell is its own task;
    /// with batching on, replayable cells sharing a machine shape coalesce
    /// into lockstep cohorts (capped at [`MAX_COHORT`]) and everything
    /// else — live fallbacks, RK4 cells, cohorts of one — stays a plain
    /// cell task.
    fn plan_tasks(
        &self,
        configs: &[ExperimentConfig],
        workloads: &[Workload],
        range: std::ops::Range<usize>,
    ) -> Vec<Task> {
        let store = match (&self.mode, self.batch) {
            (TraceMode::Replay(store), true) => store,
            _ => return range.map(Task::Cell).collect(),
        };
        // Cohort key: everything the shared thermal network depends on —
        // the machine shape fixes the floorplan, hence the RC network and
        // the propagator pair. Interval length and clock are included so a
        // cohort's lanes also share the nominal step and advance as one
        // column group (mixed steps would still be correct, just slower).
        type CohortKey = (usize, usize, usize, u64, u64);
        type Members = Vec<(usize, Arc<ActivityTrace>)>;
        let mut tasks: Vec<Task> = Vec::new();
        let mut cohorts: Vec<(CohortKey, Members)> = Vec::new();
        for i in range {
            let cfg = &configs[i / workloads.len()];
            let workload = &workloads[i % workloads.len()];
            let trace = store
                .get(cfg.name, workload.name(), &cfg.replay_points())
                .filter(|t| ReplayBackend::validate(cfg, workload, t).is_ok());
            match trace {
                // Only the matrix-exponential path has a batched kernel;
                // RK4 cells replay serially as before.
                Some(t) if cfg.integrator == Integrator::Expm => {
                    let pc = &cfg.processor;
                    let key = (
                        pc.frontend_mode.partitions(),
                        pc.backends,
                        pc.trace_cache.physical_banks(),
                        cfg.interval_cycles,
                        pc.frequency_hz.to_bits(),
                    );
                    match cohorts.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, members)) => members.push((i, t)),
                        None => cohorts.push((key, vec![(i, t)])),
                    }
                }
                _ => tasks.push(Task::Cell(i)),
            }
        }
        for (_, members) in cohorts {
            for chunk in members.chunks(MAX_COHORT) {
                if chunk.len() < 2 {
                    // A cohort of one gains nothing from the batch matrix;
                    // the plain replay path avoids its setup entirely.
                    tasks.extend(chunk.iter().map(|(i, _)| Task::Cell(*i)));
                } else {
                    tasks.push(Task::Cohort(chunk.to_vec()));
                }
            }
        }
        tasks.sort_by_key(Task::first_cell);
        tasks
    }

    fn run_task(
        &self,
        configs: &[ExperimentConfig],
        workloads: &[Workload],
        task: &Task,
    ) -> Vec<CellOutcome> {
        match task {
            Task::Cell(i) => vec![self.run_cell(configs, workloads, *i)],
            Task::Cohort(members) => {
                BatchScheduler::run_cohort(configs, workloads, members, Arc::clone(&self.cache))
            }
        }
    }

    fn run_cell(
        &self,
        configs: &[ExperimentConfig],
        workloads: &[Workload],
        i: usize,
    ) -> CellOutcome {
        let (config, app) = (i / workloads.len(), i % workloads.len());
        let cfg = &configs[config];
        let workload = &workloads[app];
        let started = Instant::now();
        let engine = || {
            CoupledEngine::for_workload(cfg, workload.clone())
                .with_warm_cache(Arc::clone(&self.cache))
        };
        let (result, stats) = match &self.mode {
            TraceMode::Live => engine().run_with_stats(),
            TraceMode::Record(store) => {
                let (recorded, stats) = engine().run_recorded();
                let result = recorded.map(|(result, trace)| {
                    // Only tainted recordings — made under an unverifiable
                    // custom DTM closure — are skipped: they cannot prove
                    // any operating point. Core-perturbing spec policies
                    // record their full point family and store fine; the
                    // capability-aware key keeps families from clobbering
                    // each other.
                    if trace.meta.replay_safe {
                        store.insert(trace);
                    }
                    result
                });
                (result, stats)
            }
            TraceMode::Replay(store) => {
                // Replay when a covering trace exists; anything else —
                // no recording, a core-side mismatch, a missing operating
                // point — falls back to live simulation so a replaying
                // sweep always completes.
                match store.get(cfg.name, workload.name(), &cfg.replay_points()) {
                    Some(trace) if ReplayBackend::validate(cfg, workload, &trace).is_ok() => {
                        engine().with_replay(trace).run_with_stats()
                    }
                    _ => engine().run_with_stats(),
                }
            }
        };
        CellOutcome {
            config,
            app,
            config_name: cfg.name,
            app_name: workload.name(),
            result,
            wall_time_s: started.elapsed().as_secs_f64(),
            warm_hit: stats.warm_start_hit,
            replayed: stats.replayed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_app, run_suite};

    fn tiny_grid() -> (Vec<ExperimentConfig>, Vec<AppProfile>) {
        (
            vec![
                ExperimentConfig::baseline().with_uops(40_000),
                ExperimentConfig::bank_hopping().with_uops(40_000),
            ],
            vec![
                AppProfile::test_tiny(),
                *AppProfile::by_name("gzip").unwrap(),
            ],
        )
    }

    #[test]
    fn parallel_grid_matches_serial_grid() {
        let (cfgs, apps) = tiny_grid();
        let serial = SweepRunner::serial().grid(&cfgs, &apps);
        let parallel = SweepRunner::with_threads(4).grid(&cfgs, &apps);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn grid_matches_run_app_cell_by_cell() {
        let (cfgs, apps) = tiny_grid();
        let grid = SweepRunner::with_threads(3).grid(&cfgs, &apps);
        for (c, cfg) in cfgs.iter().enumerate() {
            for (a, app) in apps.iter().enumerate() {
                assert_eq!(grid[c][a], run_app(cfg, app), "cell [{c}][{a}]");
            }
        }
    }

    #[test]
    fn try_grid_report_indexes_cells_by_coordinates() {
        let (cfgs, apps) = tiny_grid();
        let report = SweepRunner::with_threads(3).try_grid(&cfgs, &apps);
        assert_eq!(report.shape(), (2, 2));
        assert!(report.is_complete());
        assert_eq!(report.failed(), 0);
        for (c, cfg) in cfgs.iter().enumerate() {
            assert_eq!(report.row(c).len(), apps.len());
            for (a, app) in apps.iter().enumerate() {
                let cell = report.cell(c, a);
                assert_eq!((cell.config, cell.app), (c, a));
                assert_eq!(cell.config_name, cfg.name);
                assert_eq!(cell.app_name, app.name);
                assert_eq!(cell.result.as_ref().unwrap(), &run_app(cfg, app));
                assert!(cell.wall_time_s >= 0.0);
            }
        }
    }

    #[test]
    fn try_cells_slices_reassemble_into_the_whole_grid() {
        let (cfgs, apps) = tiny_grid();
        let workloads: Vec<Workload> = apps.iter().map(|p| Workload::Single(*p)).collect();
        let whole = SweepRunner::serial().try_grid(&cfgs, &apps);
        let runner = SweepRunner::serial();
        let head = runner.try_cells(&cfgs, &workloads, 0..1);
        let tail = runner.try_cells(&cfgs, &workloads, 1..4);
        assert_eq!((head.len(), tail.len()), (1, 3));
        // Slices merged out of order reassemble the exact serial report.
        let merged = SweepReport::assemble(2, 2, tail.into_iter().chain(head)).unwrap();
        assert_eq!(merged, whole);
        // Coverage violations are errors, never a fabricated report.
        let partial = runner.try_cells(&cfgs, &workloads, 0..2);
        let missing = SweepReport::assemble(2, 2, partial.clone()).unwrap_err();
        assert!(missing.contains("missing cell"), "{missing}");
        let doubled: Vec<_> = partial.clone().into_iter().chain(partial).collect();
        let duplicate = SweepReport::assemble(2, 2, doubled).unwrap_err();
        assert!(duplicate.contains("duplicate cell"), "{duplicate}");
    }

    #[test]
    fn suite_matches_run_suite() {
        let cfg = ExperimentConfig::baseline().with_uops(40_000);
        let apps = [
            AppProfile::test_tiny(),
            *AppProfile::by_name("gzip").unwrap(),
        ];
        assert_eq!(
            SweepRunner::new().suite(&cfg, &apps),
            run_suite(&cfg, &apps)
        );
    }

    #[test]
    fn empty_grid_is_fine() {
        let grid = SweepRunner::new().grid(&[], &[AppProfile::test_tiny()]);
        assert!(grid.is_empty());
        let (cfgs, _) = tiny_grid();
        let grid = SweepRunner::new().grid(&cfgs, &[]);
        assert_eq!(grid.len(), 2);
        assert!(grid.iter().all(Vec::is_empty));
    }

    #[test]
    fn warm_cache_populates_and_hits_on_rerun() {
        let runner = SweepRunner::with_threads(2);
        let cfgs = vec![ExperimentConfig::baseline().with_uops(30_000)];
        let apps = vec![AppProfile::test_tiny()];
        let first = runner.try_grid(&cfgs, &apps);
        assert_eq!(runner.warm_cache().len(), 1);
        assert_eq!(runner.warm_cache().hits(), 0);
        assert_eq!(first.warm_hits(), 0);
        // The same cell again: warm start served from cache, same result.
        let second = runner.try_grid(&cfgs, &apps);
        assert_eq!(runner.warm_cache().hits(), 1);
        assert_eq!(second.warm_hits(), 1);
        assert_eq!(first, second);
    }

    #[test]
    fn on_cell_streams_every_outcome_once() {
        let (cfgs, apps) = tiny_grid();
        let seen = Arc::new(Mutex::new(Vec::<(usize, usize)>::new()));
        let sink = Arc::clone(&seen);
        let report = SweepRunner::with_threads(4)
            .with_on_cell(move |cell| {
                sink.lock().unwrap().push((cell.config, cell.app));
            })
            .try_grid(&cfgs, &apps);
        let mut coords = seen.lock().unwrap().clone();
        coords.sort_unstable();
        // Every cell streamed exactly once, whatever the completion order.
        assert_eq!(coords, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert!(report.is_complete());
    }

    #[test]
    fn get_or_compute_coordinates_concurrent_misses() {
        let cache = Arc::new(WarmStartCache::with_shards(4));
        let machine = Machine::new(2, 4, 3);
        let leakage = LeakageModel::paper();
        let nominal = vec![1.0; machine.block_count()];
        let solves = Arc::new(AtomicU64::new(0));
        thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                let nominal = nominal.clone();
                let solves = Arc::clone(&solves);
                scope.spawn(move || {
                    let (state, _) = cache
                        .get_or_compute(machine, &LeakageModel::paper(), &nominal, || {
                            solves.fetch_add(1, Ordering::Relaxed);
                            Ok::<_, EngineError>(vec![42.0])
                        })
                        .unwrap();
                    assert_eq!(state.as_slice(), &[42.0]);
                });
            }
        });
        // Eight racers on one key: exactly one cold solve.
        assert_eq!(solves.load(Ordering::Relaxed), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
        assert_eq!(cache.len(), 1);
        // Distinct leakage silicon never shares the key.
        let (_, hit) = cache
            .get_or_compute(
                machine,
                &LeakageModel {
                    ratio_at_ambient: 0.31,
                    ..leakage
                },
                &nominal,
                || Ok::<_, EngineError>(vec![43.0]),
            )
            .unwrap();
        assert!(!hit, "a different leakage model must miss");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn failed_compute_leaves_no_entry_behind() {
        let cache = WarmStartCache::new();
        let machine = Machine::new(1, 4, 2);
        let leakage = LeakageModel::paper();
        let nominal = vec![0.5; machine.block_count()];
        let err = cache
            .get_or_compute(machine, &leakage, &nominal, || {
                Err::<Vec<f64>, _>(EngineError::NotConverged("synthetic"))
            })
            .unwrap_err();
        assert_eq!(err, EngineError::NotConverged("synthetic"));
        assert!(cache.is_empty(), "failed solve left a key claimed");
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        // The key is free again: a later attempt solves cold and caches.
        let (state, hit) = cache
            .get_or_compute(machine, &leakage, &nominal, || {
                Ok::<_, EngineError>(vec![1.0])
            })
            .unwrap();
        assert!(!hit);
        assert_eq!(state.as_slice(), &[1.0]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        SweepRunner::with_threads(0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        WarmStartCache::with_shards(0);
    }
}
