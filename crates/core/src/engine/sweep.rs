//! Parallel execution of an application × configuration grid, plus the
//! warm-start cache shared between its cells.

use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use distfront_power::Machine;
use distfront_trace::AppProfile;

use super::coupled::CoupledEngine;
use crate::experiment::ExperimentConfig;
use crate::runner::AppResult;

/// Cache key: the machine shape plus the exact bits of the nominal power
/// profile. The warm-start fixed point is a pure function of these (the
/// package and leakage model are constants), so an exact-bit key makes a
/// cache hit indistinguishable from a cold solve.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct WarmKey {
    partitions: usize,
    backends: usize,
    tc_banks: usize,
    nominal_bits: Vec<u64>,
}

impl WarmKey {
    fn new(machine: Machine, nominal: &[f64]) -> Self {
        WarmKey {
            partitions: machine.partitions,
            backends: machine.backends,
            tc_banks: machine.tc_banks,
            nominal_bits: nominal.iter().map(|x| x.to_bits()).collect(),
        }
    }
}

/// Shares converged steady-state warm starts between engines.
///
/// Keyed by (machine shape, nominal power profile) — the warm-start fixed
/// point is a pure function of exactly those inputs, and the key stores
/// the power profile's exact bits, so a hit is bit-identical to solving
/// cold. Thread-safe; one cache is shared by every cell of a
/// [`SweepRunner`] grid.
#[derive(Debug, Default)]
pub struct WarmStartCache {
    map: Mutex<HashMap<WarmKey, Arc<Vec<f64>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WarmStartCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the converged node temperatures for a machine shape and
    /// nominal power profile.
    pub fn lookup(&self, machine: Machine, nominal: &[f64]) -> Option<Arc<Vec<f64>>> {
        let key = WarmKey::new(machine, nominal);
        let found = self.map.lock().expect("cache poisoned").get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores converged node temperatures for a machine shape and nominal
    /// power profile.
    pub fn insert(&self, machine: Machine, nominal: &[f64], node_temps: Vec<f64>) {
        let key = WarmKey::new(machine, nominal);
        self.map
            .lock()
            .expect("cache poisoned")
            .entry(key)
            .or_insert_with(|| Arc::new(node_temps));
    }

    /// Distinct warm starts stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to solve cold.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Executes an application × configuration grid, fanning cells out over
/// `std::thread::scope` workers.
///
/// Every cell is an independent [`CoupledEngine`] run — a pure function of
/// its (configuration, application) pair — so the grid parallelizes
/// embarrassingly and the output is **bit-identical to a serial double
/// loop** regardless of thread count or scheduling: results are written
/// into their grid slot by index, never in completion order.
///
/// # Examples
///
/// ```
/// use distfront::engine::SweepRunner;
/// use distfront::ExperimentConfig;
/// use distfront_trace::AppProfile;
///
/// let cfgs = [ExperimentConfig::baseline().with_uops(30_000)];
/// let apps = [AppProfile::test_tiny()];
/// let parallel = SweepRunner::new().grid(&cfgs, &apps);
/// let serial = SweepRunner::serial().grid(&cfgs, &apps);
/// assert_eq!(parallel, serial);
/// ```
#[derive(Debug)]
pub struct SweepRunner {
    threads: usize,
    cache: Arc<WarmStartCache>,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepRunner {
    /// A runner using every available hardware thread.
    pub fn new() -> Self {
        let threads = thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// A runner executing cells one at a time on the calling thread.
    pub fn serial() -> Self {
        Self::with_threads(1)
    }

    /// A runner with an explicit worker count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "a sweep needs at least one worker");
        SweepRunner {
            threads,
            cache: Arc::new(WarmStartCache::new()),
        }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The warm-start cache shared by this runner's cells (persists across
    /// [`grid`](Self::grid) calls, so repeated sweeps of overlapping
    /// configurations reuse each other's warm starts).
    pub fn warm_cache(&self) -> &Arc<WarmStartCache> {
        &self.cache
    }

    /// Runs every configuration over every application; `result[c][a]`
    /// corresponds to `configs[c]` and `apps[a]`, exactly as the serial
    /// nested loop would order them.
    ///
    /// # Panics
    ///
    /// Panics if any cell's engine fails — an invalid configuration or a
    /// non-converged warm start (matching
    /// [`run_app`](crate::runner::run_app)) — or a worker thread dies.
    pub fn grid(&self, configs: &[ExperimentConfig], apps: &[AppProfile]) -> Vec<Vec<AppResult>> {
        let cells = configs.len() * apps.len();
        let mut flat: Vec<Option<AppResult>> = (0..cells).map(|_| None).collect();
        let workers = self.threads.min(cells);
        if workers <= 1 {
            for (i, slot) in flat.iter_mut().enumerate() {
                *slot = Some(self.run_cell(configs, apps, i));
            }
        } else {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, AppResult)>();
            thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= cells {
                            break;
                        }
                        let result = self.run_cell(configs, apps, i);
                        if tx.send((i, result)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, result) in rx {
                    flat[i] = Some(result);
                }
            });
        }
        let mut flat = flat.into_iter();
        configs
            .iter()
            .map(|_| {
                apps.iter()
                    .map(|_| flat.next().flatten().expect("worker died mid-sweep"))
                    .collect()
            })
            .collect()
    }

    /// Runs one configuration over a whole application suite.
    pub fn suite(&self, cfg: &ExperimentConfig, apps: &[AppProfile]) -> Vec<AppResult> {
        self.grid(std::slice::from_ref(cfg), apps)
            .pop()
            .expect("one configuration in, one row out")
    }

    fn run_cell(&self, configs: &[ExperimentConfig], apps: &[AppProfile], i: usize) -> AppResult {
        let cfg = &configs[i / apps.len()];
        let app = &apps[i % apps.len()];
        CoupledEngine::new(cfg, app)
            .with_warm_cache(Arc::clone(&self.cache))
            .run()
            .unwrap_or_else(|e| panic!("engine failed for {}/{}: {e}", cfg.name, app.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_app, run_suite};

    fn tiny_grid() -> (Vec<ExperimentConfig>, Vec<AppProfile>) {
        (
            vec![
                ExperimentConfig::baseline().with_uops(40_000),
                ExperimentConfig::bank_hopping().with_uops(40_000),
            ],
            vec![
                AppProfile::test_tiny(),
                *AppProfile::by_name("gzip").unwrap(),
            ],
        )
    }

    #[test]
    fn parallel_grid_matches_serial_grid() {
        let (cfgs, apps) = tiny_grid();
        let serial = SweepRunner::serial().grid(&cfgs, &apps);
        let parallel = SweepRunner::with_threads(4).grid(&cfgs, &apps);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn grid_matches_run_app_cell_by_cell() {
        let (cfgs, apps) = tiny_grid();
        let grid = SweepRunner::with_threads(3).grid(&cfgs, &apps);
        for (c, cfg) in cfgs.iter().enumerate() {
            for (a, app) in apps.iter().enumerate() {
                assert_eq!(grid[c][a], run_app(cfg, app), "cell [{c}][{a}]");
            }
        }
    }

    #[test]
    fn suite_matches_run_suite() {
        let cfg = ExperimentConfig::baseline().with_uops(40_000);
        let apps = [
            AppProfile::test_tiny(),
            *AppProfile::by_name("gzip").unwrap(),
        ];
        assert_eq!(
            SweepRunner::new().suite(&cfg, &apps),
            run_suite(&cfg, &apps)
        );
    }

    #[test]
    fn empty_grid_is_fine() {
        let grid = SweepRunner::new().grid(&[], &[AppProfile::test_tiny()]);
        assert!(grid.is_empty());
        let (cfgs, _) = tiny_grid();
        let grid = SweepRunner::new().grid(&cfgs, &[]);
        assert_eq!(grid.len(), 2);
        assert!(grid.iter().all(Vec::is_empty));
    }

    #[test]
    fn warm_cache_populates_and_hits_on_rerun() {
        let runner = SweepRunner::with_threads(2);
        let cfgs = vec![ExperimentConfig::baseline().with_uops(30_000)];
        let apps = vec![AppProfile::test_tiny()];
        let first = runner.grid(&cfgs, &apps);
        assert_eq!(runner.warm_cache().len(), 1);
        assert_eq!(runner.warm_cache().hits(), 0);
        // The same cell again: warm start served from cache, same result.
        let second = runner.grid(&cfgs, &apps);
        assert_eq!(runner.warm_cache().hits(), 1);
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        SweepRunner::with_threads(0);
    }
}
