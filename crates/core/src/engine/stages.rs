//! The default three-phase pipeline: pilot → warm start → interval loop,
//! each phase a [`Stage`] ported verbatim from the pre-refactor monolithic
//! runner so results stay bit-identical.

use std::sync::Arc;

use distfront_power::{BlockId, OperatingPoint};
use distfront_trace::record::PointKey;
use distfront_uarch::{ActivityCounters, FetchGate, IntervalReport, Simulator};

use super::replay::point_key_of;
use super::sweep::WarmStartCache;
use super::traits::{DtmAction, Stage};
use super::{EngineCx, EngineError};

/// Measures the application's nominal average dynamic power (the paper
/// uses its first 50 M instructions) and primes the power model with it.
///
/// The pilot exercises the same per-interval control decisions as the
/// evaluation (balanced rebalance, hopping) so per-bank activity is the
/// honest time average; temperatures are not known yet, hence balanced.
#[derive(Debug, Default)]
pub struct PilotStage;

impl Stage for PilotStage {
    fn name(&self) -> &'static str {
        "pilot"
    }

    fn run(&mut self, cx: &mut EngineCx<'_>) -> Result<(), EngineError> {
        let cfg = cx.cfg;
        let pc = &cfg.processor;
        // The context hands the pilot a freshly built simulator; only
        // rebuild when an earlier custom stage already ran it.
        if cx.sim.total_committed() > 0 || cx.sim.current_cycle() > 0 {
            cx.sim.reset_workload(cx.workload, cfg.seed);
        }
        let mut pilot_act = None::<ActivityCounters>;
        loop {
            let target = cx.sim.current_cycle() + cfg.interval_cycles;
            let r = cx.sim.step(target, cfg.pilot_uops());
            match &mut pilot_act {
                Some(acc) => acc.merge(&r.activity),
                None => pilot_act = Some(r.activity),
            }
            let banks = pc.trace_cache.physical_banks();
            cx.sim
                .trace_cache_mut()
                .rebalance(&vec![cx.pkg.ambient_c; banks]);
            if cfg.hop {
                cx.sim.trace_cache_mut().hop();
            }
            if r.done {
                break;
            }
        }
        let pilot_act = pilot_act.expect("pilot ran at least one interval");
        if let Some(rec) = &mut cx.recorder {
            rec.record_pilot(&pilot_act);
        }
        let mut nominal = cx.model.dynamic_power(&pilot_act);
        for (n, i) in nominal.iter_mut().zip(&cx.idle) {
            *n += i;
        }
        cx.model.set_nominal_dynamic(nominal.clone());
        cx.nominal = Some(nominal);
        Ok(())
    }
}

/// Warm-starts the thermal state: steady state under nominal power with
/// the leakage↔temperature fixed point iterated to convergence
/// ("simulations are started with the processor already warm", §4).
///
/// With a shared [`WarmStartCache`] the converged state is reused across
/// grid cells that share a machine shape, leakage model and nominal power
/// profile; the fixed point is a pure function of exactly those inputs,
/// so a cache hit restores bit-identical temperatures.
#[derive(Debug, Default)]
pub struct WarmStartStage {
    cache: Option<Arc<WarmStartCache>>,
}

impl WarmStartStage {
    /// A warm start that always solves from scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// A warm start that consults (and fills) a shared cache.
    pub fn with_cache(cache: Arc<WarmStartCache>) -> Self {
        WarmStartStage { cache: Some(cache) }
    }
}

impl Stage for WarmStartStage {
    fn name(&self) -> &'static str {
        "warm-start"
    }

    fn run(&mut self, cx: &mut EngineCx<'_>) -> Result<(), EngineError> {
        let nominal = cx.nominal()?.to_vec();
        let Some(cache) = &self.cache else {
            return solve_warm_fixed_point(cx, &nominal);
        };
        // Single cache entry per cell: the closure solves cold (leaving
        // `cx.thermal` at the converged state) only when this engine is
        // the key's first; same-key racers wait on the key's slot and take
        // the solved state as a hit. A non-converged error propagates and
        // leaves the cache without the key — a failed fixed point must
        // never poison later cells.
        let leakage = cx.model.leakage_model();
        let (state, hit) = cache.get_or_compute(cx.machine, &leakage, &nominal, || {
            solve_warm_fixed_point(cx, &nominal)?;
            Ok(cx.thermal.node_temperatures().to_vec())
        })?;
        if hit {
            cx.thermal.set_node_temperatures(state.as_ref().clone());
            cx.warm_start_hit = true;
        }
        Ok(())
    }
}

/// Iterates the leakage↔temperature fixed point under nominal power until
/// the hottest block moves < 0.01 °C, leaving `cx.thermal` at the
/// converged steady state.
///
/// # Errors
///
/// Returns [`EngineError::NotConverged`] when the fixed point fails to
/// settle within 40 iterations (e.g. a leakage feedback gain above one);
/// the thermal state must then not be trusted or cached.
fn solve_warm_fixed_point(cx: &mut EngineCx<'_>, nominal: &[f64]) -> Result<(), EngineError> {
    let leak = cx.model.leakage_model();
    let mut temps = vec![cx.pkg.ambient_c; cx.machine.block_count()];
    for _ in 0..40 {
        let p: Vec<f64> = nominal
            .iter()
            .zip(&temps)
            .map(|(&n, &t)| n + leak.leakage_watts(n, t))
            .collect();
        cx.thermal.steady_state(&p);
        let new_temps = cx.thermal.block_temperatures().to_vec();
        let delta = new_temps
            .iter()
            .zip(&temps)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        // The finiteness check guards the max-fold above: a runaway
        // fixed point overflows to non-finite temperatures whose NaN
        // deltas f64::max silently drops.
        let finite = new_temps.iter().all(|t| t.is_finite());
        temps = new_temps;
        if finite && delta < 0.01 {
            return Ok(());
        }
    }
    Err(EngineError::NotConverged(
        "leakage-temperature warm-start fixed point did not settle within 40 iterations",
    ))
}

/// The evaluation run: updates block power and temperature every interval,
/// records the AbsMax/Average/AvgMax metrics, recomputes the thermal-aware
/// bank mapping from the bank sensors, rotates the gated bank when hopping
/// is enabled, and consults the DTM policy (§3.2 control loop).
#[derive(Debug, Default)]
pub struct IntervalLoopStage;

impl Stage for IntervalLoopStage {
    fn name(&self) -> &'static str {
        "interval-loop"
    }

    fn run(&mut self, cx: &mut EngineCx<'_>) -> Result<(), EngineError> {
        let cfg = cx.cfg;
        let pc = &cfg.processor;
        cx.sim.reset_workload(cx.workload, cfg.seed);
        // The recording family (empty when not recording): per interval the
        // live step covers the point matching the live action, and every
        // other family point is probed on a throwaway simulator fork from
        // the identical pipeline state.
        let family: Vec<PointKey> = cx
            .recorder
            .as_ref()
            .map(|rec| rec.family().to_vec())
            .unwrap_or_default();
        let mut action = DtmAction::Nominal;
        loop {
            apply_action(cx, action);
            let target = cx.sim.current_cycle() + cfg.interval_cycles;
            let live_key = point_key_of(action);
            // A single-point family needs no forks: the live stream *is*
            // the nominal point (power-level actions never perturb it, and
            // a tainted custom-DTM recording keeps the raw live stream).
            let probes: Vec<Option<IntervalReport>> = if family.len() > 1 {
                family
                    .iter()
                    .map(|&key| {
                        (key != live_key).then(|| {
                            cx.sim.probe_interval(
                                |fork| apply_sim_point(fork, key),
                                target,
                                cfg.uops_per_app,
                            )
                        })
                    })
                    .collect()
            } else {
                vec![None; family.len()]
            };
            let r = cx.sim.step(target, cfg.uops_per_app);
            let gated_bank = cx.sim.trace_cache().gated_bank().map(|b| b as u8);
            if let Some(rec) = &mut cx.recorder {
                let reports: Vec<&IntervalReport> = family
                    .iter()
                    .zip(&probes)
                    .map(|(&key, probe)| match probe {
                        Some(p) if key != live_key => p,
                        _ => &r,
                    })
                    .collect();
                rec.record_interval(&reports, gated_bank);
            }
            let gated: Vec<BlockId> = gated_bank.map(BlockId::TcBank).into_iter().collect();
            let temps_now = cx.thermal.block_temperatures().to_vec();
            let mut power = cx.model.total_power(&r.activity, &temps_now, &gated);
            for (p, i) in power.iter_mut().zip(&cx.idle) {
                *p += i;
            }
            for g in &gated {
                power[cx.machine.index_of(*g)] = 0.0;
            }
            // At a scaled operating point (DVFS or throttle, both applied
            // through the model's effective frequency) the same cycle
            // count covers proportionally more wall time, computed in f64
            // from the exact cycle count — no integer rounding, so energy
            // and wall-time accounting conserve the un-stretched interval
            // exactly. Identical at nominal.
            let dt = r.activity.cycles as f64 / cx.model.effective_frequency_hz();
            cx.power_time_sum += power.iter().sum::<f64>() * dt;
            cx.time_sum += dt;
            // Two half-steps so intra-interval transients are sampled.
            cx.thermal.advance(&power, dt / 2.0);
            cx.tracker.record(cx.thermal.block_temperatures(), dt / 2.0);
            cx.thermal.advance(&power, dt / 2.0);
            cx.tracker.record(cx.thermal.block_temperatures(), dt / 2.0);
            cx.tracker.end_interval();

            // Thermal management control (§3.2): remap from bank sensors,
            // then rotate the gated bank.
            let bank_temps: Vec<f64> = (0..pc.trace_cache.physical_banks())
                .map(|k| {
                    cx.thermal.block_temperatures()[cx.machine.index_of(BlockId::TcBank(k as u8))]
                })
                .collect();
            cx.sim.trace_cache_mut().rebalance(&bank_temps);
            if cfg.hop {
                cx.sim.trace_cache_mut().hop();
            }
            if let Some(ctrl) = &mut cx.dtm {
                action = ctrl.decide(cx.thermal.block_temperatures());
            }
            if r.done {
                break;
            }
        }
        Ok(())
    }
}

/// Translates the policy's action for the coming interval into the
/// simulator and power-model hooks, releasing whatever the previous
/// interval engaged. Every hook's nominal setting is exactly the state an
/// engine starts in, so a run without a DTM policy (or with one that stays
/// [`DtmAction::Nominal`]) is bit-identical to the pre-DTM engine.
/// Configures a probe fork's simulator hooks to an operating point: the
/// core half of [`apply_action`], keyed by the recorded [`PointKey`]
/// instead of a live [`DtmAction`]. Resets every hook first so the fork's
/// variant state is absolute, not relative to the live action's.
fn apply_sim_point(sim: &mut Simulator, key: PointKey) {
    sim.set_clock_scale(1.0);
    sim.set_fetch_gate(None);
    sim.set_partition_bias(None);
    match key {
        PointKey::Nominal => {}
        PointKey::Dvfs { f_bits, .. } => sim.set_clock_scale(f64::from_bits(f_bits)),
        PointKey::FetchGate { open, period } => {
            sim.set_fetch_gate(Some(FetchGate { open, period }))
        }
        PointKey::MigrateTo(p) => sim.set_partition_bias(Some(p as usize)),
    }
}

fn apply_action(cx: &mut EngineCx<'_>, action: DtmAction) {
    cx.model.set_operating_point(OperatingPoint::nominal());
    cx.sim.set_clock_scale(1.0);
    cx.sim.set_fetch_gate(None);
    cx.sim.set_partition_bias(None);
    match action {
        DtmAction::Nominal => {}
        DtmAction::Throttle(factor) => {
            // First-order frequency scaling at unchanged voltage: the same
            // work takes 1/factor the wall time, spreading its switching
            // energy over the stretched interval. Routing it through the
            // operating point keeps dt and the power model's seconds
            // derived from one un-rounded f64 stretch; the integer cycle
            // count stays untouched for activity statistics. The operating
            // point's own validation rejects factors outside (0, 1].
            cx.model
                .set_operating_point(OperatingPoint::scaled(factor, 1.0));
        }
        DtmAction::Dvfs { f_scale, v_scale } => {
            cx.model
                .set_operating_point(OperatingPoint::scaled(f_scale, v_scale));
            cx.sim.set_clock_scale(f_scale);
        }
        DtmAction::FetchGate { open, period } => {
            cx.sim.set_fetch_gate(Some(FetchGate { open, period }));
        }
        DtmAction::MigrateTo(partition) => {
            cx.sim.set_partition_bias(Some(partition));
        }
    }
}
