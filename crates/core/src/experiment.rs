//! Experiment configurations: the baseline and every technique the paper
//! evaluates, as presets.

use crate::dtm::{DvfsPolicy, FetchGatePolicy, MigrationPolicy};
use crate::emergency::EmergencyPolicy;
use distfront_cache::trace_cache::TraceCacheConfig;
use distfront_power::LeakageModel;
use distfront_thermal::Integrator;
use distfront_trace::record::PointKey;
use distfront_uarch::{FrontendMode, ProcessorConfig};

/// Which dynamic-thermal-management policy a configuration runs with.
///
/// A spec is pure data — the engine builds the matching controller from it
/// when a run starts (see [`crate::dtm`] for the controllers), which keeps
/// [`ExperimentConfig`] a complete, copyable description of an experiment
/// and lets the parallel sweep executor rebuild identical controllers in
/// every worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DtmSpec {
    /// The conventional emergency throttle
    /// ([`EmergencyController`](crate::emergency::EmergencyController)).
    Emergency(EmergencyPolicy),
    /// Global voltage/frequency scaling
    /// ([`GlobalDvfsController`](crate::dtm::GlobalDvfsController)).
    GlobalDvfs(DvfsPolicy),
    /// Fetch toggling
    /// ([`FetchGateController`](crate::dtm::FetchGateController)).
    FetchGate(FetchGatePolicy),
    /// Front-end activity migration
    /// ([`MigrationController`](crate::dtm::MigrationController)).
    Migration(MigrationPolicy),
}

impl DtmSpec {
    /// Validates the underlying policy.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            DtmSpec::Emergency(p) => p.validate(),
            DtmSpec::GlobalDvfs(p) => p.validate(),
            DtmSpec::FetchGate(p) => p.validate(),
            DtmSpec::Migration(p) => p.validate(),
        }
    }

    /// Builds the controller this spec describes, watching `machine`.
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid (call [`validate`](Self::validate)
    /// first for a recoverable error).
    pub fn build(&self, machine: distfront_power::Machine) -> Box<dyn crate::engine::DtmPolicy> {
        use crate::dtm::{FetchGateController, GlobalDvfsController, MigrationController};
        use crate::emergency::EmergencyController;
        match *self {
            DtmSpec::Emergency(p) => Box::new(EmergencyController::new(p)),
            DtmSpec::GlobalDvfs(p) => Box::new(GlobalDvfsController::new(p)),
            DtmSpec::FetchGate(p) => Box::new(FetchGateController::new(p)),
            DtmSpec::Migration(p) => Box::new(MigrationController::for_machine(p, machine)),
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            DtmSpec::Emergency(_) => "emergency-throttle",
            DtmSpec::GlobalDvfs(_) => "global-dvfs",
            DtmSpec::FetchGate(_) => "fetch-gate",
            DtmSpec::Migration(_) => "migration",
        }
    }

    /// Whether the policy acts purely at the power level, leaving the core
    /// pipeline untouched.
    ///
    /// The emergency throttle only stretches wall-clock time through the
    /// power model's operating point, so recorded activity is unaffected
    /// and any replay-safe trace — including a legacy v1 nominal-only one
    /// — replays it exactly. Global DVFS rescales the core clock (uncore
    /// latencies get relatively closer), and fetch gating / migration
    /// steer the pipeline directly: all three change the activity stream
    /// itself, so replaying them needs a trace whose recorded
    /// operating-point family covers the policy's
    /// [`actionable_points`](Self::actionable_points) (see
    /// [`ReplayBackend`](crate::engine::ReplayBackend)).
    pub fn replay_compatible(&self) -> bool {
        matches!(self, DtmSpec::Emergency(_))
    }

    /// The core-perturbing operating points this policy can put the
    /// pipeline into — the capabilities a trace must have recorded for a
    /// replay under this policy to be faithful. Power-level policies (the
    /// emergency throttle) need nothing beyond the nominal stream;
    /// migration is inert on a machine with fewer than two frontend
    /// partitions (its controller never fires), so it too needs nothing
    /// there.
    pub fn actionable_points(&self, partitions: usize) -> Vec<PointKey> {
        match self {
            DtmSpec::Emergency(_) => Vec::new(),
            DtmSpec::GlobalDvfs(p) => vec![PointKey::dvfs(p.f_scale, p.v_scale)],
            DtmSpec::FetchGate(p) => vec![PointKey::FetchGate {
                open: p.open,
                period: p.period,
            }],
            DtmSpec::Migration(_) => {
                if partitions >= 2 {
                    (0..partitions)
                        .map(|p| PointKey::MigrateTo(p as u32))
                        .collect()
                } else {
                    Vec::new()
                }
            }
        }
    }
}

/// A complete experiment configuration: processor + thermal-management
/// control knobs + run length.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Short name shown in reports (e.g. `"baseline"`, `"bh+ab"`).
    pub name: &'static str,
    /// The processor under test.
    pub processor: ProcessorConfig,
    /// Rotate the Vdd-gated trace-cache bank every interval (§3.2.1). When
    /// the trace cache has a spare bank but `hop` is false, the spare stays
    /// statically gated — the paper's "blank silicon" comparison point.
    pub hop: bool,
    /// Control/thermal interval in cycles (the paper uses 10 M; scaled runs
    /// use proportionally shorter intervals).
    pub interval_cycles: u64,
    /// Micro-ops to simulate per application.
    pub uops_per_app: u64,
    /// Fraction of the run used as the pilot that measures nominal average
    /// dynamic power (the paper uses its first 50 M instructions).
    pub pilot_fraction: f64,
    /// Un-gateable background switching power (clock tree, latches) as a
    /// density over the floorplan, in W/mm².
    pub idle_density_w_mm2: f64,
    /// Workload seed.
    pub seed: u64,
    /// Optional dynamic thermal management (the paper runs with none; §4
    /// names it as future work — see [`crate::emergency`] and
    /// [`crate::dtm`]).
    pub dtm: Option<DtmSpec>,
    /// Transient integrator for the default thermal backend: the cached
    /// matrix-exponential propagator (default) or the RK4 reference.
    pub integrator: Integrator,
    /// The silicon's leakage model (the paper's calibration by default).
    /// Overridable for sensitivity studies — or to stress the
    /// leakage↔temperature fixed point past its stability limit, which is
    /// how fault-injection runs create a cell that genuinely fails.
    pub leakage: LeakageModel,
}

impl ExperimentConfig {
    /// The paper's baseline: quad-cluster backend, centralized rename and
    /// commit, two-banked trace cache, no thermal management.
    pub fn baseline() -> Self {
        ExperimentConfig {
            name: "baseline",
            processor: ProcessorConfig::hpca05_baseline(),
            hop: false,
            interval_cycles: 200_000,
            uops_per_app: 400_000,
            pilot_fraction: 0.25,
            idle_density_w_mm2: 0.045,
            seed: 0xD15F,
            dtm: None,
            integrator: Integrator::default(),
            leakage: LeakageModel::paper(),
        }
    }

    /// Thermal-aware biased mapping only ("Address Biasing" in Fig. 13).
    pub fn address_biasing() -> Self {
        let mut c = Self::baseline();
        c.name = "address-biasing";
        c.processor.trace_cache = TraceCacheConfig::address_biasing();
        c
    }

    /// Bank hopping only (Fig. 13): 2+1 banks, one gated, rotating.
    pub fn bank_hopping() -> Self {
        let mut c = Self::baseline();
        c.name = "bank-hopping";
        c.processor.trace_cache = TraceCacheConfig::bank_hopping();
        c.hop = true;
        c
    }

    /// Bank hopping combined with the biased mapping (Fig. 13 "BH+AB").
    pub fn hopping_and_biasing() -> Self {
        let mut c = Self::baseline();
        c.name = "bh+ab";
        c.processor.trace_cache = TraceCacheConfig::hopping_and_biasing();
        c.hop = true;
        c
    }

    /// The Fig. 13 comparison point: three banks with one *statically*
    /// gated (inserted blank silicon; no rotation, no biasing).
    pub fn blank_silicon() -> Self {
        let mut c = Self::baseline();
        c.name = "blank-silicon";
        c.processor.trace_cache = TraceCacheConfig::bank_hopping();
        c.hop = false;
        c
    }

    /// Distributed rename and commit only (Fig. 12): bi-clustered frontend
    /// feeding the quad-clustered backend, +1 commit cycle.
    pub fn distributed_rename_commit() -> Self {
        let mut c = Self::baseline();
        c.name = "drc";
        c.processor.frontend_mode = FrontendMode::Distributed { frontends: 2 };
        c.processor.distributed_commit_penalty = 1;
        c
    }

    /// The full distributed frontend (Fig. 14): distributed rename/commit
    /// plus bank hopping plus the biased mapping.
    pub fn combined() -> Self {
        let mut c = Self::distributed_rename_commit();
        c.name = "drc+bh+ab";
        c.processor.trace_cache = TraceCacheConfig::hopping_and_biasing();
        c.hop = true;
        c
    }

    /// All Fig. 13 trace-cache configurations in presentation order.
    pub fn figure13_set() -> Vec<ExperimentConfig> {
        vec![
            Self::address_biasing(),
            Self::blank_silicon(),
            Self::bank_hopping(),
            Self::hopping_and_biasing(),
        ]
    }

    /// Every named preset, in presentation order — the configuration
    /// registry grid-targeted [`JobSpec`](crate::job::JobSpec)s resolve
    /// against.
    pub fn presets() -> Vec<ExperimentConfig> {
        vec![
            Self::baseline(),
            Self::address_biasing(),
            Self::blank_silicon(),
            Self::bank_hopping(),
            Self::hopping_and_biasing(),
            Self::distributed_rename_commit(),
            Self::combined(),
        ]
    }

    /// Looks a preset up by its `name` field (`"baseline"`, `"drc"`,
    /// `"drc+bh+ab"`, …).
    pub fn by_name(name: &str) -> Option<ExperimentConfig> {
        Self::presets().into_iter().find(|c| c.name == name)
    }

    /// Scales the run length (and control interval) for quick tests or
    /// long evaluations; returns `self` for chaining.
    pub fn with_uops(mut self, uops: u64) -> Self {
        self.uops_per_app = uops;
        self.interval_cycles = (uops / 2).clamp(20_000, 10_000_000);
        self
    }

    /// Overrides the workload seed; returns `self` for chaining.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables the conventional emergency throttle; returns `self` for
    /// chaining. Shorthand for [`with_dtm`](Self::with_dtm) with
    /// [`DtmSpec::Emergency`].
    pub fn with_emergency(self, policy: EmergencyPolicy) -> Self {
        self.with_dtm(DtmSpec::Emergency(policy))
    }

    /// Enables a dynamic-thermal-management policy; returns `self` for
    /// chaining.
    pub fn with_dtm(mut self, spec: DtmSpec) -> Self {
        self.dtm = Some(spec);
        self
    }

    /// Selects the transient integrator for the default thermal backend;
    /// returns `self` for chaining.
    pub fn with_integrator(mut self, integrator: Integrator) -> Self {
        self.integrator = integrator;
        self
    }

    /// Overrides the leakage model; returns `self` for chaining.
    pub fn with_leakage(mut self, leakage: LeakageModel) -> Self {
        self.leakage = leakage;
        self
    }

    /// Pilot run length in micro-ops.
    pub fn pilot_uops(&self) -> u64 {
        ((self.uops_per_app as f64 * self.pilot_fraction) as u64).max(10_000)
    }

    /// The operating-point family a recording of this configuration
    /// captures per interval — equivalently, the capability set a trace
    /// must cover to replay this configuration faithfully. Always opens
    /// with [`PointKey::Nominal`]; the configured DTM policy contributes
    /// its [`DtmSpec::actionable_points`].
    pub fn replay_points(&self) -> Vec<PointKey> {
        let mut points = vec![PointKey::Nominal];
        if let Some(spec) = &self.dtm {
            points.extend(spec.actionable_points(self.processor.frontend_mode.partitions()));
        }
        points
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.processor.validate()?;
        if self.hop && !self.processor.trace_cache.hopping {
            return Err("hop control enabled without a spare bank".into());
        }
        if self.interval_cycles == 0 {
            return Err("interval must be positive".into());
        }
        if self.uops_per_app == 0 {
            return Err("empty run".into());
        }
        if !(0.0..=1.0).contains(&self.pilot_fraction) {
            return Err("pilot fraction outside [0,1]".into());
        }
        if self.idle_density_w_mm2 < 0.0 {
            return Err("negative idle density".into());
        }
        if self.leakage.ratio_at_ambient.is_nan() || self.leakage.ratio_at_ambient < 0.0 {
            return Err("negative leakage ratio".into());
        }
        if self.leakage.doubling_celsius.is_nan() || self.leakage.doubling_celsius <= 0.0 {
            return Err("leakage doubling temperature must be positive".into());
        }
        if let Some(d) = &self.dtm {
            d.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_valid() {
        for c in [
            ExperimentConfig::baseline(),
            ExperimentConfig::address_biasing(),
            ExperimentConfig::bank_hopping(),
            ExperimentConfig::hopping_and_biasing(),
            ExperimentConfig::blank_silicon(),
            ExperimentConfig::distributed_rename_commit(),
            ExperimentConfig::combined(),
        ] {
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", c.name));
        }
    }

    #[test]
    fn preset_names_unique() {
        let mut names: Vec<_> = [
            ExperimentConfig::baseline(),
            ExperimentConfig::address_biasing(),
            ExperimentConfig::bank_hopping(),
            ExperimentConfig::hopping_and_biasing(),
            ExperimentConfig::blank_silicon(),
            ExperimentConfig::distributed_rename_commit(),
            ExperimentConfig::combined(),
        ]
        .iter()
        .map(|c| c.name)
        .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn blank_silicon_has_spare_but_never_hops() {
        let c = ExperimentConfig::blank_silicon();
        assert!(c.processor.trace_cache.hopping);
        assert!(!c.hop);
        assert!(!c.processor.trace_cache.biased);
    }

    #[test]
    fn combined_enables_everything() {
        let c = ExperimentConfig::combined();
        assert!(c.processor.frontend_mode.is_distributed());
        assert!(c.processor.trace_cache.hopping);
        assert!(c.processor.trace_cache.biased);
        assert!(c.hop);
        assert_eq!(c.processor.distributed_commit_penalty, 1);
    }

    #[test]
    fn dtm_specs_validate_and_name() {
        use crate::dtm::{DvfsPolicy, FetchGatePolicy, MigrationPolicy};
        use crate::emergency::EmergencyPolicy;
        let specs = [
            DtmSpec::Emergency(EmergencyPolicy::paper_limit()),
            DtmSpec::GlobalDvfs(DvfsPolicy::paper_limit()),
            DtmSpec::FetchGate(FetchGatePolicy::paper_limit()),
            DtmSpec::Migration(MigrationPolicy::paper_limit()),
        ];
        let mut names: Vec<_> = specs.iter().map(DtmSpec::name).collect();
        for spec in &specs {
            ExperimentConfig::baseline()
                .with_dtm(*spec)
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name()));
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn replay_points_mirror_the_policy_ladder() {
        use crate::dtm::{DvfsPolicy, FetchGatePolicy, MigrationPolicy};
        use crate::emergency::EmergencyPolicy;
        let base = ExperimentConfig::baseline();
        assert_eq!(base.replay_points(), vec![PointKey::Nominal]);
        assert_eq!(
            base.clone()
                .with_emergency(EmergencyPolicy::paper_limit())
                .replay_points(),
            vec![PointKey::Nominal],
            "power-level throttling needs only the nominal stream"
        );
        let dvfs = DvfsPolicy::paper_limit();
        assert_eq!(
            base.clone()
                .with_dtm(DtmSpec::GlobalDvfs(dvfs))
                .replay_points(),
            vec![
                PointKey::Nominal,
                PointKey::dvfs(dvfs.f_scale, dvfs.v_scale)
            ]
        );
        let gate = FetchGatePolicy::paper_limit();
        assert_eq!(
            base.clone()
                .with_dtm(DtmSpec::FetchGate(gate))
                .replay_points(),
            vec![
                PointKey::Nominal,
                PointKey::FetchGate {
                    open: gate.open,
                    period: gate.period
                }
            ]
        );
        // Migration is inert on a centralized frontend…
        assert_eq!(
            base.with_dtm(DtmSpec::Migration(MigrationPolicy::paper_limit()))
                .replay_points(),
            vec![PointKey::Nominal]
        );
        // …and contributes one dispatch-bias point per partition otherwise.
        assert_eq!(
            ExperimentConfig::distributed_rename_commit()
                .with_dtm(DtmSpec::Migration(MigrationPolicy::paper_limit()))
                .replay_points(),
            vec![
                PointKey::Nominal,
                PointKey::MigrateTo(0),
                PointKey::MigrateTo(1)
            ]
        );
    }

    #[test]
    fn invalid_dtm_spec_fails_config_validation() {
        let bad = DtmSpec::GlobalDvfs(crate::dtm::DvfsPolicy {
            f_scale: 0.0,
            ..crate::dtm::DvfsPolicy::paper_limit()
        });
        assert!(ExperimentConfig::baseline()
            .with_dtm(bad)
            .validate()
            .is_err());
    }

    #[test]
    fn with_uops_scales_interval() {
        let c = ExperimentConfig::baseline().with_uops(100_000);
        assert_eq!(c.uops_per_app, 100_000);
        assert_eq!(c.interval_cycles, 50_000);
        c.validate().unwrap();
    }

    #[test]
    fn figure13_set_order() {
        let names: Vec<_> = ExperimentConfig::figure13_set()
            .iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(
            names,
            vec!["address-biasing", "blank-silicon", "bank-hopping", "bh+ab"]
        );
    }
}
