//! Experiment configurations: the baseline and every technique the paper
//! evaluates, as presets.

use crate::emergency::EmergencyPolicy;
use distfront_cache::trace_cache::TraceCacheConfig;
use distfront_uarch::{FrontendMode, ProcessorConfig};

/// A complete experiment configuration: processor + thermal-management
/// control knobs + run length.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Short name shown in reports (e.g. `"baseline"`, `"bh+ab"`).
    pub name: &'static str,
    /// The processor under test.
    pub processor: ProcessorConfig,
    /// Rotate the Vdd-gated trace-cache bank every interval (§3.2.1). When
    /// the trace cache has a spare bank but `hop` is false, the spare stays
    /// statically gated — the paper's "blank silicon" comparison point.
    pub hop: bool,
    /// Control/thermal interval in cycles (the paper uses 10 M; scaled runs
    /// use proportionally shorter intervals).
    pub interval_cycles: u64,
    /// Micro-ops to simulate per application.
    pub uops_per_app: u64,
    /// Fraction of the run used as the pilot that measures nominal average
    /// dynamic power (the paper uses its first 50 M instructions).
    pub pilot_fraction: f64,
    /// Un-gateable background switching power (clock tree, latches) as a
    /// density over the floorplan, in W/mm².
    pub idle_density_w_mm2: f64,
    /// Workload seed.
    pub seed: u64,
    /// Optional dynamic thermal management (the paper runs with none; §4
    /// names it as future work — see [`crate::emergency`]).
    pub emergency: Option<EmergencyPolicy>,
}

impl ExperimentConfig {
    /// The paper's baseline: quad-cluster backend, centralized rename and
    /// commit, two-banked trace cache, no thermal management.
    pub fn baseline() -> Self {
        ExperimentConfig {
            name: "baseline",
            processor: ProcessorConfig::hpca05_baseline(),
            hop: false,
            interval_cycles: 200_000,
            uops_per_app: 400_000,
            pilot_fraction: 0.25,
            idle_density_w_mm2: 0.045,
            seed: 0xD15F,
            emergency: None,
        }
    }

    /// Thermal-aware biased mapping only ("Address Biasing" in Fig. 13).
    pub fn address_biasing() -> Self {
        let mut c = Self::baseline();
        c.name = "address-biasing";
        c.processor.trace_cache = TraceCacheConfig::address_biasing();
        c
    }

    /// Bank hopping only (Fig. 13): 2+1 banks, one gated, rotating.
    pub fn bank_hopping() -> Self {
        let mut c = Self::baseline();
        c.name = "bank-hopping";
        c.processor.trace_cache = TraceCacheConfig::bank_hopping();
        c.hop = true;
        c
    }

    /// Bank hopping combined with the biased mapping (Fig. 13 "BH+AB").
    pub fn hopping_and_biasing() -> Self {
        let mut c = Self::baseline();
        c.name = "bh+ab";
        c.processor.trace_cache = TraceCacheConfig::hopping_and_biasing();
        c.hop = true;
        c
    }

    /// The Fig. 13 comparison point: three banks with one *statically*
    /// gated (inserted blank silicon; no rotation, no biasing).
    pub fn blank_silicon() -> Self {
        let mut c = Self::baseline();
        c.name = "blank-silicon";
        c.processor.trace_cache = TraceCacheConfig::bank_hopping();
        c.hop = false;
        c
    }

    /// Distributed rename and commit only (Fig. 12): bi-clustered frontend
    /// feeding the quad-clustered backend, +1 commit cycle.
    pub fn distributed_rename_commit() -> Self {
        let mut c = Self::baseline();
        c.name = "drc";
        c.processor.frontend_mode = FrontendMode::Distributed { frontends: 2 };
        c.processor.distributed_commit_penalty = 1;
        c
    }

    /// The full distributed frontend (Fig. 14): distributed rename/commit
    /// plus bank hopping plus the biased mapping.
    pub fn combined() -> Self {
        let mut c = Self::distributed_rename_commit();
        c.name = "drc+bh+ab";
        c.processor.trace_cache = TraceCacheConfig::hopping_and_biasing();
        c.hop = true;
        c
    }

    /// All Fig. 13 trace-cache configurations in presentation order.
    pub fn figure13_set() -> Vec<ExperimentConfig> {
        vec![
            Self::address_biasing(),
            Self::blank_silicon(),
            Self::bank_hopping(),
            Self::hopping_and_biasing(),
        ]
    }

    /// Scales the run length (and control interval) for quick tests or
    /// long evaluations; returns `self` for chaining.
    pub fn with_uops(mut self, uops: u64) -> Self {
        self.uops_per_app = uops;
        self.interval_cycles = (uops / 2).clamp(20_000, 10_000_000);
        self
    }

    /// Overrides the workload seed; returns `self` for chaining.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables dynamic thermal management; returns `self` for chaining.
    pub fn with_emergency(mut self, policy: EmergencyPolicy) -> Self {
        self.emergency = Some(policy);
        self
    }

    /// Pilot run length in micro-ops.
    pub fn pilot_uops(&self) -> u64 {
        ((self.uops_per_app as f64 * self.pilot_fraction) as u64).max(10_000)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.processor.validate()?;
        if self.hop && !self.processor.trace_cache.hopping {
            return Err("hop control enabled without a spare bank".into());
        }
        if self.interval_cycles == 0 {
            return Err("interval must be positive".into());
        }
        if self.uops_per_app == 0 {
            return Err("empty run".into());
        }
        if !(0.0..=1.0).contains(&self.pilot_fraction) {
            return Err("pilot fraction outside [0,1]".into());
        }
        if self.idle_density_w_mm2 < 0.0 {
            return Err("negative idle density".into());
        }
        if let Some(e) = &self.emergency {
            e.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_valid() {
        for c in [
            ExperimentConfig::baseline(),
            ExperimentConfig::address_biasing(),
            ExperimentConfig::bank_hopping(),
            ExperimentConfig::hopping_and_biasing(),
            ExperimentConfig::blank_silicon(),
            ExperimentConfig::distributed_rename_commit(),
            ExperimentConfig::combined(),
        ] {
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", c.name));
        }
    }

    #[test]
    fn preset_names_unique() {
        let mut names: Vec<_> = [
            ExperimentConfig::baseline(),
            ExperimentConfig::address_biasing(),
            ExperimentConfig::bank_hopping(),
            ExperimentConfig::hopping_and_biasing(),
            ExperimentConfig::blank_silicon(),
            ExperimentConfig::distributed_rename_commit(),
            ExperimentConfig::combined(),
        ]
        .iter()
        .map(|c| c.name)
        .collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }

    #[test]
    fn blank_silicon_has_spare_but_never_hops() {
        let c = ExperimentConfig::blank_silicon();
        assert!(c.processor.trace_cache.hopping);
        assert!(!c.hop);
        assert!(!c.processor.trace_cache.biased);
    }

    #[test]
    fn combined_enables_everything() {
        let c = ExperimentConfig::combined();
        assert!(c.processor.frontend_mode.is_distributed());
        assert!(c.processor.trace_cache.hopping);
        assert!(c.processor.trace_cache.biased);
        assert!(c.hop);
        assert_eq!(c.processor.distributed_commit_penalty, 1);
    }

    #[test]
    fn with_uops_scales_interval() {
        let c = ExperimentConfig::baseline().with_uops(100_000);
        assert_eq!(c.uops_per_app, 100_000);
        assert_eq!(c.interval_cycles, 50_000);
        c.validate().unwrap();
    }

    #[test]
    fn figure13_set_order() {
        let names: Vec<_> = ExperimentConfig::figure13_set()
            .iter()
            .map(|c| c.name)
            .collect();
        assert_eq!(
            names,
            vec!["address-biasing", "blank-silicon", "bank-hopping", "bh+ab"]
        );
    }
}
