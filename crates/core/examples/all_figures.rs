//! Regenerates every figure at a given run length and prints them together
//! (used to populate EXPERIMENTS.md; the per-figure benches are the
//! canonical entry points).
use distfront::{figure1, figure12, figure13, figure14};
use distfront_trace::AppProfile;

fn main() {
    let uops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(300_000);
    let apps = AppProfile::spec2000();
    println!("run length: {uops} uops per app, 26 apps\n");
    println!("{}", figure1(apps, uops));
    println!("{}", figure12(apps, uops));
    println!("{}", figure13(apps, uops));
    println!("{}", figure14(apps, uops));
}
