//! Quick serial-vs-parallel sweep comparison over the 26-app evaluation
//! set (a lighter-weight version of the `sweep` bench).
//!
//! Exits with status 1 if the parallel results diverge from the serial
//! reference, so CI smoke jobs can gate on the bit-identity guarantee —
//! which covers error cells too: the fault-tolerant reports are compared
//! whole, and any failed cell is listed (exit 2) instead of panicking.
//!
//! ```sh
//! cargo run --release --example sweep_speedup -p distfront -- 100000
//! ```
use distfront::{ExperimentConfig, SweepRunner};
use distfront_trace::AppProfile;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let uops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    let configs = [
        ExperimentConfig::baseline().with_uops(uops),
        ExperimentConfig::combined().with_uops(uops),
    ];
    let apps = AppProfile::spec2000();
    let cores = SweepRunner::new().threads();
    println!(
        "{} apps x {} configs x {uops} uops, serial vs {cores} workers",
        apps.len(),
        configs.len()
    );

    let t0 = Instant::now();
    let serial = SweepRunner::serial().try_grid(&configs, apps);
    let serial_s = t0.elapsed().as_secs_f64();
    println!("serial:   {serial_s:.2} s");

    let parallel_runner = SweepRunner::new();
    let t1 = Instant::now();
    let parallel = parallel_runner.try_grid(&configs, apps);
    let parallel_s = t1.elapsed().as_secs_f64();
    println!(
        "parallel: {parallel_s:.2} s ({} warm-cache hits)",
        parallel.warm_hits()
    );

    if serial != parallel {
        eprintln!(
            "error: parallel sweep diverged from serial — the bit-identity \
             guarantee is broken"
        );
        return ExitCode::FAILURE;
    }
    if !serial.is_complete() {
        for cell in serial.failures() {
            eprintln!(
                "error: cell {} failed: {}",
                cell.label(),
                cell.result.as_ref().unwrap_err()
            );
        }
        return ExitCode::from(2);
    }
    println!(
        "speedup {:.2}x on {cores} cores; results bit-identical",
        serial_s / parallel_s
    );
    ExitCode::SUCCESS
}
