use distfront::{average_temps, run_suite, ExperimentConfig};
use distfront_trace::AppProfile;
fn main() {
    let uops: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000);
    let apps = AppProfile::spec2000();
    let res = run_suite(&ExperimentConfig::baseline().with_uops(uops), apps);
    let mean_ipc = res.iter().map(|r| r.ipc).sum::<f64>() / res.len() as f64;
    let mean_pw = res.iter().map(|r| r.avg_power_w).sum::<f64>() / res.len() as f64;
    let t = average_temps(&res);
    println!("26 apps x {uops}: mean ipc {mean_ipc:.2} power {mean_pw:.1}W");
    println!(
        "ROB abs {:.1} avg {:.1} | RAT abs {:.1} avg {:.1} | TC abs {:.1} avg {:.1}",
        t.rob.abs_max_c,
        t.rob.average_c,
        t.rat.abs_max_c,
        t.rat.average_c,
        t.trace_cache.abs_max_c,
        t.trace_cache.average_c
    );
    println!(
        "FE abs {:.1} avg {:.1} | BE avg {:.1} | UL2 avg {:.1} | proc abs {:.1} avg {:.1}",
        t.frontend.abs_max_c,
        t.frontend.average_c,
        t.backend.average_c,
        t.ul2.average_c,
        t.processor.abs_max_c,
        t.processor.average_c
    );
}
