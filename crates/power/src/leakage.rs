//! Temperature-dependent leakage power (§2.1).
//!
//! The paper models a block's leakage as a fraction of its nominal average
//! dynamic power: 30 % at the 45 °C in-box ambient, growing exponentially
//! with temperature (the well-known subthreshold dependence).

/// Exponential leakage model.
///
/// `P_leak(T) = ratio_at_ambient · P_dyn_nominal · 2^((T − T_ambient)/doubling_celsius)`
///
/// # Examples
///
/// ```
/// use distfront_power::LeakageModel;
///
/// let m = LeakageModel::paper();
/// let leak = m.leakage_watts(10.0, 45.0); // at ambient
/// assert!((leak - 3.0).abs() < 1e-9); // 30 % of nominal dynamic
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeakageModel {
    /// Leakage as a fraction of nominal dynamic power at ambient.
    pub ratio_at_ambient: f64,
    /// In-box ambient temperature in Celsius (45 °C per \[19\]\[27\]).
    pub ambient_c: f64,
    /// Temperature increase that doubles leakage, in Celsius.
    pub doubling_celsius: f64,
    /// Emergency temperature limit in Celsius (the paper's 381 K). The
    /// exponential is evaluated at no more than this temperature, which is
    /// where a real chip would throttle; it also keeps the
    /// leakage-temperature fixed point from running away numerically.
    pub emergency_c: f64,
}

impl LeakageModel {
    /// The paper's calibration: 30 % of dynamic at 45 °C, exponential in T
    /// (doubling every 38 °C, in the HotLeakage-era band for 65 nm).
    pub fn paper() -> Self {
        LeakageModel {
            ratio_at_ambient: 0.30,
            ambient_c: 45.0,
            doubling_celsius: 38.0,
            emergency_c: 381.0 - 273.15,
        }
    }

    /// Leakage power of a block in Watts given its nominal average dynamic
    /// power and current temperature.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `nominal_dynamic_watts` is negative.
    pub fn leakage_watts(&self, nominal_dynamic_watts: f64, temp_c: f64) -> f64 {
        debug_assert!(nominal_dynamic_watts >= 0.0);
        let t = temp_c.min(self.emergency_c);
        self.ratio_at_ambient
            * nominal_dynamic_watts
            * 2f64.powf((t - self.ambient_c) / self.doubling_celsius)
    }

    /// Leakage power at a scaled supply voltage, for global-DVFS studies.
    ///
    /// `P_leak = V · I_sub` and the subthreshold current is roughly linear
    /// in `V` (to first order, away from the DIBL knee), so scaling the
    /// supply by `v_scale` scales leakage power by `v_scale²`. At
    /// `v_scale = 1.0` this is bit-identical to [`leakage_watts`]
    /// (multiplication by one is exact).
    ///
    /// [`leakage_watts`]: Self::leakage_watts
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v_scale` is not positive.
    pub fn leakage_watts_scaled(
        &self,
        nominal_dynamic_watts: f64,
        temp_c: f64,
        v_scale: f64,
    ) -> f64 {
        debug_assert!(v_scale > 0.0);
        self.leakage_watts(nominal_dynamic_watts, temp_c) * v_scale * v_scale
    }
}

impl Default for LeakageModel {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_percent_at_ambient() {
        let m = LeakageModel::paper();
        assert!((m.leakage_watts(1.0, 45.0) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn doubles_per_step() {
        let m = LeakageModel::paper();
        let base = m.leakage_watts(1.0, m.ambient_c);
        let one_step = m.leakage_watts(1.0, m.ambient_c + m.doubling_celsius);
        assert!((one_step / base - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cooler_than_ambient_leaks_less() {
        let m = LeakageModel::paper();
        assert!(m.leakage_watts(1.0, 30.0) < m.leakage_watts(1.0, 45.0));
    }

    #[test]
    fn zero_dynamic_means_zero_leakage() {
        // Vdd-gated blocks (hopping) have no leakage: the model receives
        // zero nominal power for them.
        let m = LeakageModel::paper();
        assert_eq!(m.leakage_watts(0.0, 100.0), 0.0);
    }

    #[test]
    fn monotone_up_to_the_emergency_limit() {
        let m = LeakageModel::paper();
        let mut prev = 0.0;
        for t in 0..107 {
            let l = m.leakage_watts(5.0, f64::from(t));
            assert!(l > prev);
            prev = l;
        }
    }

    #[test]
    fn scaled_voltage_scales_leakage_quadratically() {
        let m = LeakageModel::paper();
        let base = m.leakage_watts(4.0, 80.0);
        let scaled = m.leakage_watts_scaled(4.0, 80.0, 0.8);
        assert!((scaled / base - 0.64).abs() < 1e-12);
        // Nominal voltage is bit-identical to the unscaled path.
        assert_eq!(
            m.leakage_watts_scaled(4.0, 80.0, 1.0).to_bits(),
            base.to_bits()
        );
    }

    #[test]
    fn capped_at_emergency_limit() {
        let m = LeakageModel::paper();
        let at_limit = m.leakage_watts(5.0, m.emergency_c);
        assert_eq!(m.leakage_watts(5.0, 500.0), at_limit);
        assert!(at_limit.is_finite());
    }
}
