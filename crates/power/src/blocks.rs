//! Functional-block identities and machine shape.
//!
//! [`BlockId`] names every power-dissipating block of the Fig. 10 floorplan
//! — the frontend strip (ROB, RAT, ITLB, decode, branch predictor, trace
//! cache banks), the per-cluster backend blocks, and the UL2.
//! [`Machine`] fixes how many of each exist for a given configuration and
//! provides the canonical block ordering shared by the power and thermal
//! crates.

use std::fmt;

/// A power-dissipating functional block.
///
/// The `u8` payloads index the partition, trace-cache bank or backend
/// cluster the block instance belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockId {
    /// Reorder-buffer partition (one instance when centralized).
    Rob(u8),
    /// Rename-table partition.
    Rat(u8),
    /// Instruction TLB.
    Itlb,
    /// Decode/steer logic (`DECO` in Fig. 10).
    Deco,
    /// Branch predictor.
    Bp,
    /// Trace-cache physical bank (`TC-k`).
    TcBank(u8),
    /// Unified second-level cache.
    Ul2,
    /// Per-cluster L1 data cache.
    Dl1(u8),
    /// Per-cluster data TLB.
    Dtlb(u8),
    /// Per-cluster integer functional units (`IFU`).
    IntFu(u8),
    /// Per-cluster floating-point functional units (`FPFU`).
    FpFu(u8),
    /// Per-cluster integer register file (`IRF`).
    Irf(u8),
    /// Per-cluster floating-point register file (`FPRF`).
    Fprf(u8),
    /// Per-cluster integer scheduler (`IS`).
    IntSched(u8),
    /// Per-cluster floating-point scheduler (`FPS`).
    FpSched(u8),
    /// Per-cluster copy scheduler (`CS`).
    CopySched(u8),
    /// Per-cluster memory order buffer + memory scheduler (`MS/MOB`).
    Mob(u8),
}

impl BlockId {
    /// `true` for blocks belonging to the frontend (Fig. 10's top strip).
    pub fn is_frontend(self) -> bool {
        matches!(
            self,
            BlockId::Rob(_)
                | BlockId::Rat(_)
                | BlockId::Itlb
                | BlockId::Deco
                | BlockId::Bp
                | BlockId::TcBank(_)
        )
    }

    /// `true` for per-cluster backend blocks.
    pub fn is_backend(self) -> bool {
        !self.is_frontend() && self != BlockId::Ul2
    }

    /// The backend cluster this block belongs to, if any.
    pub fn cluster(self) -> Option<u8> {
        match self {
            BlockId::Dl1(c)
            | BlockId::Dtlb(c)
            | BlockId::IntFu(c)
            | BlockId::FpFu(c)
            | BlockId::Irf(c)
            | BlockId::Fprf(c)
            | BlockId::IntSched(c)
            | BlockId::FpSched(c)
            | BlockId::CopySched(c)
            | BlockId::Mob(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockId::Rob(p) => write!(f, "ROB-{p}"),
            BlockId::Rat(p) => write!(f, "RAT-{p}"),
            BlockId::Itlb => write!(f, "ITLB"),
            BlockId::Deco => write!(f, "DECO"),
            BlockId::Bp => write!(f, "BP"),
            BlockId::TcBank(b) => write!(f, "TC-{b}"),
            BlockId::Ul2 => write!(f, "UL2"),
            BlockId::Dl1(c) => write!(f, "DL1.{c}"),
            BlockId::Dtlb(c) => write!(f, "DTLB.{c}"),
            BlockId::IntFu(c) => write!(f, "IFU.{c}"),
            BlockId::FpFu(c) => write!(f, "FPFU.{c}"),
            BlockId::Irf(c) => write!(f, "IRF.{c}"),
            BlockId::Fprf(c) => write!(f, "FPRF.{c}"),
            BlockId::IntSched(c) => write!(f, "IS.{c}"),
            BlockId::FpSched(c) => write!(f, "FPS.{c}"),
            BlockId::CopySched(c) => write!(f, "CS.{c}"),
            BlockId::Mob(c) => write!(f, "MS/MOB.{c}"),
        }
    }
}

/// The shape of the simulated machine: how many frontend partitions,
/// backend clusters and physical trace-cache banks exist.
///
/// # Examples
///
/// ```
/// use distfront_power::{BlockId, Machine};
///
/// let m = Machine::new(1, 4, 2); // the paper's baseline
/// assert_eq!(m.blocks().len(), 1 + 1 + 3 + 2 + 1 + 4 * 10);
/// assert_eq!(m.index_of(BlockId::Ul2), m.blocks().iter()
///     .position(|&b| b == BlockId::Ul2).unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Machine {
    /// Frontend partitions (1 = centralized).
    pub partitions: usize,
    /// Backend clusters.
    pub backends: usize,
    /// Physical trace-cache banks (including a gated hopping spare).
    pub tc_banks: usize,
}

impl Machine {
    /// Creates a machine shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or exceeds 255.
    pub fn new(partitions: usize, backends: usize, tc_banks: usize) -> Self {
        assert!(partitions > 0 && partitions <= 255);
        assert!(backends > 0 && backends <= 255);
        assert!(tc_banks > 0 && tc_banks <= 255);
        Machine {
            partitions,
            backends,
            tc_banks,
        }
    }

    /// All blocks in canonical order: frontend strip, UL2, then clusters.
    pub fn blocks(&self) -> Vec<BlockId> {
        let mut v = Vec::new();
        for p in 0..self.partitions {
            v.push(BlockId::Rob(p as u8));
        }
        for p in 0..self.partitions {
            v.push(BlockId::Rat(p as u8));
        }
        v.push(BlockId::Itlb);
        v.push(BlockId::Deco);
        v.push(BlockId::Bp);
        for b in 0..self.tc_banks {
            v.push(BlockId::TcBank(b as u8));
        }
        v.push(BlockId::Ul2);
        for c in 0..self.backends {
            let c = c as u8;
            v.extend([
                BlockId::Dl1(c),
                BlockId::Dtlb(c),
                BlockId::IntFu(c),
                BlockId::FpFu(c),
                BlockId::Irf(c),
                BlockId::Fprf(c),
                BlockId::IntSched(c),
                BlockId::FpSched(c),
                BlockId::CopySched(c),
                BlockId::Mob(c),
            ]);
        }
        v
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        2 * self.partitions + 3 + self.tc_banks + 1 + 10 * self.backends
    }

    /// Canonical index of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist in this machine.
    pub fn index_of(&self, block: BlockId) -> usize {
        let p = self.partitions;
        let base_tc = 2 * p + 3;
        let base_ul2 = base_tc + self.tc_banks;
        let base_cluster = base_ul2 + 1;
        let idx = match block {
            BlockId::Rob(i) => usize::from(i),
            BlockId::Rat(i) => p + usize::from(i),
            BlockId::Itlb => 2 * p,
            BlockId::Deco => 2 * p + 1,
            BlockId::Bp => 2 * p + 2,
            BlockId::TcBank(i) => base_tc + usize::from(i),
            BlockId::Ul2 => base_ul2,
            BlockId::Dl1(c) => base_cluster + usize::from(c) * 10,
            BlockId::Dtlb(c) => base_cluster + usize::from(c) * 10 + 1,
            BlockId::IntFu(c) => base_cluster + usize::from(c) * 10 + 2,
            BlockId::FpFu(c) => base_cluster + usize::from(c) * 10 + 3,
            BlockId::Irf(c) => base_cluster + usize::from(c) * 10 + 4,
            BlockId::Fprf(c) => base_cluster + usize::from(c) * 10 + 5,
            BlockId::IntSched(c) => base_cluster + usize::from(c) * 10 + 6,
            BlockId::FpSched(c) => base_cluster + usize::from(c) * 10 + 7,
            BlockId::CopySched(c) => base_cluster + usize::from(c) * 10 + 8,
            BlockId::Mob(c) => base_cluster + usize::from(c) * 10 + 9,
        };
        assert!(
            self.contains(block),
            "block {block} not in machine {self:?}"
        );
        idx
    }

    /// `true` if `block` exists in this machine shape.
    pub fn contains(&self, block: BlockId) -> bool {
        match block {
            BlockId::Rob(i) | BlockId::Rat(i) => usize::from(i) < self.partitions,
            BlockId::TcBank(i) => usize::from(i) < self.tc_banks,
            BlockId::Itlb | BlockId::Deco | BlockId::Bp | BlockId::Ul2 => true,
            b => b.cluster().is_some_and(|c| usize::from(c) < self.backends),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_block_count() {
        let m = Machine::new(1, 4, 2);
        assert_eq!(m.blocks().len(), m.block_count());
        assert_eq!(m.block_count(), 2 + 3 + 2 + 1 + 40);
    }

    #[test]
    fn index_of_matches_ordering() {
        for m in [
            Machine::new(1, 4, 2),
            Machine::new(2, 4, 3),
            Machine::new(2, 8, 4),
        ] {
            for (i, b) in m.blocks().iter().enumerate() {
                assert_eq!(m.index_of(*b), i, "block {b} in {m:?}");
            }
        }
    }

    #[test]
    fn frontend_backend_split() {
        let m = Machine::new(2, 4, 3);
        let fe: Vec<_> = m.blocks().into_iter().filter(|b| b.is_frontend()).collect();
        assert_eq!(fe.len(), 2 + 2 + 3 + 3);
        assert!(!BlockId::Ul2.is_frontend());
        assert!(!BlockId::Ul2.is_backend());
        assert!(BlockId::Dl1(0).is_backend());
    }

    #[test]
    #[should_panic(expected = "not in machine")]
    fn index_of_foreign_block_panics() {
        Machine::new(1, 4, 2).index_of(BlockId::Rob(1));
    }

    #[test]
    fn contains_checks_payloads() {
        let m = Machine::new(2, 4, 3);
        assert!(m.contains(BlockId::Rat(1)));
        assert!(!m.contains(BlockId::Rat(2)));
        assert!(m.contains(BlockId::TcBank(2)));
        assert!(!m.contains(BlockId::TcBank(3)));
        assert!(m.contains(BlockId::Mob(3)));
        assert!(!m.contains(BlockId::Mob(4)));
    }

    #[test]
    fn display_names_unique() {
        let m = Machine::new(2, 4, 3);
        let mut names: Vec<_> = m.blocks().iter().map(|b| b.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), m.block_count());
    }
}
