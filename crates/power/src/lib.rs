//! Power modelling for the `distfront` simulator (§2.1 of the paper).
//!
//! The paper's dynamic power model associates an activity counter with each
//! functional block and multiplies it by an energy-per-operation value;
//! leakage is modelled per block as a fraction (30 % at the 45 °C in-box
//! ambient) of the block's nominal average dynamic power, scaled
//! exponentially with temperature. This crate implements both halves:
//!
//! * [`blocks`] — the vocabulary of functional blocks ([`BlockId`]) and the
//!   machine shape ([`Machine`]) that fixes their canonical ordering,
//! * [`energy`] — per-operation energies at 65 nm / 1.1 V
//!   ([`EnergyTable`]), including the "distributed structures cost less
//!   than half per access" factor of §4.1,
//! * [`model`] — [`PowerModel`], turning activity counters into per-block
//!   Watts,
//! * [`leakage`] — the exponential temperature dependence
//!   ([`LeakageModel`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod energy;
pub mod leakage;
pub mod model;

pub use blocks::{BlockId, Machine};
pub use energy::EnergyTable;
pub use leakage::LeakageModel;
pub use model::{OperatingPoint, PowerModel};
