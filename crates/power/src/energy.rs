//! Per-operation energy values.
//!
//! Energies are in picojoules per event at 65 nm / 1.1 V, sized after
//! CACTI-class estimates for the Table 1 structure geometries and scaled so
//! the frontend accounts for roughly 30 % of dynamic power (§1), matching
//! the paper's calibration targets. Absolute Watts are not the point — the
//! per-block *ratios* are what shape the thermal results.

/// Picojoules, as a plain `f64` newtype-free alias for readability.
pub type PicoJoules = f64;

/// Energy per operation for every event class the simulator counts.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyTable {
    /// Trace-cache bank read (one trace line).
    pub tc_access: PicoJoules,
    /// Trace-cache line build/fill.
    pub tc_fill: PicoJoules,
    /// Branch-predictor lookup or update.
    pub bp_access: PicoJoules,
    /// Instruction-TLB lookup.
    pub itlb_access: PicoJoules,
    /// Decoding one micro-op.
    pub decode_uop: PicoJoules,
    /// Availability-table lookup at steer.
    pub steer_lookup: PicoJoules,
    /// Cross-partition copy-request signal.
    pub copy_request: PicoJoules,
    /// Rename-table read (centralized geometry).
    pub rat_read: PicoJoules,
    /// Rename-table write (centralized geometry).
    pub rat_write: PicoJoules,
    /// Reorder-buffer write (centralized geometry).
    pub rob_write: PicoJoules,
    /// Reorder-buffer read (centralized geometry).
    pub rob_read: PicoJoules,
    /// R/L field access of the distributed commit walk. Priced so the
    /// distributed ROB's *total* power lands at the paper's ~-11 % (§4.1):
    /// the walk pre-reads `C` fields per partition per cycle, which claws
    /// back most of the energy the cheaper partition accesses save.
    pub rob_rl_access: PicoJoules,
    /// Energy factor applied to RAT/ROB accesses when the structure is
    /// split: §4.1 observes each distributed access costs "less than half"
    /// the centralized access.
    pub partition_access_factor: f64,
    /// Issue-queue write (any class).
    pub iq_write: PicoJoules,
    /// Issue (wakeup + select) from an issue queue.
    pub iq_issue: PicoJoules,
    /// Copy-queue operation.
    pub copy_op: PicoJoules,
    /// Memory-order-buffer allocation.
    pub mob_alloc: PicoJoules,
    /// Associative memory-order-buffer search.
    pub mob_search: PicoJoules,
    /// Integer register-file read.
    pub irf_read: PicoJoules,
    /// Integer register-file write.
    pub irf_write: PicoJoules,
    /// FP register-file read.
    pub fprf_read: PicoJoules,
    /// FP register-file write.
    pub fprf_write: PicoJoules,
    /// Integer functional-unit operation.
    pub int_fu_op: PicoJoules,
    /// FP functional-unit operation.
    pub fp_fu_op: PicoJoules,
    /// L1 data-cache access.
    pub dl1_access: PicoJoules,
    /// Data-TLB access.
    pub dtlb_access: PicoJoules,
    /// UL2 access (includes the bus drivers).
    pub ul2_access: PicoJoules,
    /// Point-to-point link flit per hop.
    pub link_flit: PicoJoules,
    /// Disambiguation-bus broadcast.
    pub disamb_broadcast: PicoJoules,
    /// Global activity-energy calibration factor. The per-access energies
    /// above are bare array energies; real structures add clock, latch,
    /// bypass and control power concentrated in the same area, and the
    /// paper's 8-wide 10 GHz machine sustains higher throughput than this
    /// simulator's conservative timing model. The factor calibrates total
    /// dynamic power to the paper's envelope (Fig. 1: ~107 degC peak,
    /// ~70 degC frontend average); it scales every block equally, so
    /// per-block ratios — the quantity the experiments depend on — are
    /// untouched.
    pub activity_scale: f64,
}

impl EnergyTable {
    /// The calibrated 65 nm / 1.1 V table used for all paper experiments.
    pub fn nm65() -> Self {
        EnergyTable {
            tc_access: 380.0,
            tc_fill: 850.0,
            bp_access: 18.0,
            itlb_access: 22.0,
            decode_uop: 30.0,
            steer_lookup: 8.0,
            copy_request: 6.0,
            rat_read: 20.0,
            rat_write: 24.0,
            rob_write: 40.0,
            rob_read: 34.0,
            rob_rl_access: 12.0,
            partition_access_factor: 0.45,
            iq_write: 26.0,
            iq_issue: 60.0,
            copy_op: 20.0,
            mob_alloc: 24.0,
            mob_search: 70.0,
            irf_read: 36.0,
            irf_write: 44.0,
            fprf_read: 44.0,
            fprf_write: 52.0,
            int_fu_op: 95.0,
            fp_fu_op: 230.0,
            dl1_access: 165.0,
            dtlb_access: 16.0,
            ul2_access: 1_300.0,
            link_flit: 30.0,
            disamb_broadcast: 40.0,
            activity_scale: 33.0,
        }
    }

    /// Validates that all energies are positive and the partition factor is
    /// in `(0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns the name of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        let fields = [
            ("tc_access", self.tc_access),
            ("tc_fill", self.tc_fill),
            ("bp_access", self.bp_access),
            ("itlb_access", self.itlb_access),
            ("decode_uop", self.decode_uop),
            ("steer_lookup", self.steer_lookup),
            ("copy_request", self.copy_request),
            ("rat_read", self.rat_read),
            ("rat_write", self.rat_write),
            ("rob_write", self.rob_write),
            ("rob_read", self.rob_read),
            ("rob_rl_access", self.rob_rl_access),
            ("iq_write", self.iq_write),
            ("iq_issue", self.iq_issue),
            ("copy_op", self.copy_op),
            ("mob_alloc", self.mob_alloc),
            ("mob_search", self.mob_search),
            ("irf_read", self.irf_read),
            ("irf_write", self.irf_write),
            ("fprf_read", self.fprf_read),
            ("fprf_write", self.fprf_write),
            ("int_fu_op", self.int_fu_op),
            ("fp_fu_op", self.fp_fu_op),
            ("dl1_access", self.dl1_access),
            ("dtlb_access", self.dtlb_access),
            ("ul2_access", self.ul2_access),
            ("link_flit", self.link_flit),
            ("disamb_broadcast", self.disamb_broadcast),
        ];
        for (name, v) in fields {
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("{name} = {v} must be positive"));
            }
        }
        if !(self.activity_scale > 0.0 && self.activity_scale.is_finite()) {
            return Err(format!(
                "activity_scale = {} must be positive",
                self.activity_scale
            ));
        }
        if !(self.partition_access_factor > 0.0 && self.partition_access_factor <= 1.0) {
            return Err(format!(
                "partition_access_factor = {} outside (0, 1]",
                self.partition_access_factor
            ));
        }
        Ok(())
    }
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self::nm65()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_valid() {
        EnergyTable::nm65().validate().unwrap();
    }

    #[test]
    fn distributed_access_is_less_than_half() {
        // §4.1: "each access consumes less than half the energy".
        let t = EnergyTable::nm65();
        assert!(t.partition_access_factor < 0.5);
    }

    #[test]
    fn big_structures_cost_more() {
        let t = EnergyTable::nm65();
        assert!(t.ul2_access > t.dl1_access);
        assert!(t.dl1_access > t.dtlb_access);
        assert!(t.tc_access > t.bp_access);
        assert!(t.fp_fu_op > t.int_fu_op);
    }

    #[test]
    fn validate_rejects_bad_values() {
        let mut t = EnergyTable::nm65();
        t.tc_access = 0.0;
        assert!(t.validate().is_err());
        let mut t = EnergyTable::nm65();
        t.partition_access_factor = 1.5;
        assert!(t.validate().is_err());
    }
}
