//! Turning activity counters into per-block power.
//!
//! [`PowerModel`] implements the paper's §2.1 methodology: each block's
//! dynamic power is its activity multiplied by the energy per operation,
//! divided by the interval's wall-clock time; leakage is added per block
//! from the [`LeakageModel`], using the block's *nominal* average dynamic
//! power (measured in a pilot run, exactly as the paper warms up with the
//! nominal power of the first 50 M instructions). Vdd-gated trace-cache
//! banks dissipate neither dynamic nor leakage power.

use crate::blocks::{BlockId, Machine};
use crate::energy::EnergyTable;
use crate::leakage::LeakageModel;
use distfront_uarch::ActivityCounters;

/// A global (voltage, frequency) operating point, relative to nominal.
///
/// Global DVFS scales the whole chip: dynamic energy per operation goes as
/// `V²`, wall-clock time per cycle as `1/f`, and leakage power as `V²`
/// (see [`LeakageModel::leakage_watts_scaled`]). [`OperatingPoint::nominal`]
/// is the identity — every computation through it is bit-identical to a
/// model without operating-point support.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Clock frequency as a fraction of nominal (e.g. 0.7 = 70 %).
    pub f_scale: f64,
    /// Supply voltage as a fraction of nominal.
    pub v_scale: f64,
}

impl OperatingPoint {
    /// The nominal (unscaled) operating point.
    pub fn nominal() -> Self {
        OperatingPoint {
            f_scale: 1.0,
            v_scale: 1.0,
        }
    }

    /// A scaled operating point.
    pub fn scaled(f_scale: f64, v_scale: f64) -> Self {
        OperatingPoint { f_scale, v_scale }
    }

    /// Validates the operating point.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        for (label, v) in [("f_scale", self.f_scale), ("v_scale", self.v_scale)] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) || v == 0.0 {
                return Err(format!("{label} = {v} outside (0, 1]"));
            }
        }
        Ok(())
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        Self::nominal()
    }
}

/// Per-block power calculator.
///
/// # Examples
///
/// ```
/// use distfront_power::{EnergyTable, LeakageModel, Machine, PowerModel};
/// use distfront_uarch::ActivityCounters;
///
/// let machine = Machine::new(1, 4, 2);
/// let model = PowerModel::new(machine, EnergyTable::nm65(),
///                             LeakageModel::paper(), 10e9);
/// let mut act = ActivityCounters::new(1, 4, 2);
/// act.cycles = 1_000_000;
/// act.decoded_uops = 2_000_000;
/// let watts = model.dynamic_power(&act);
/// assert_eq!(watts.len(), machine.block_count());
/// ```
#[derive(Debug, Clone)]
pub struct PowerModel {
    machine: Machine,
    energy: EnergyTable,
    leakage: LeakageModel,
    frequency_hz: f64,
    nominal_dynamic: Vec<f64>,
    op: OperatingPoint,
}

impl PowerModel {
    /// Creates a power model for the given machine shape and clock.
    ///
    /// # Panics
    ///
    /// Panics if the energy table fails validation or the frequency is not
    /// positive.
    pub fn new(
        machine: Machine,
        energy: EnergyTable,
        leakage: LeakageModel,
        frequency_hz: f64,
    ) -> Self {
        energy
            .validate()
            .unwrap_or_else(|e| panic!("bad energy table: {e}"));
        assert!(frequency_hz > 0.0, "frequency must be positive");
        PowerModel {
            nominal_dynamic: vec![0.0; machine.block_count()],
            machine,
            energy,
            leakage,
            frequency_hz,
            op: OperatingPoint::nominal(),
        }
    }

    /// Sets the global (V, f) operating point used by subsequent power
    /// computations (global DVFS).
    ///
    /// # Panics
    ///
    /// Panics if the operating point fails validation.
    pub fn set_operating_point(&mut self, op: OperatingPoint) {
        op.validate()
            .unwrap_or_else(|e| panic!("bad operating point: {e}"));
        self.op = op;
    }

    /// The operating point in force.
    pub fn operating_point(&self) -> OperatingPoint {
        self.op
    }

    /// The clock frequency at the current operating point, in Hz. At the
    /// nominal point this equals the constructor's frequency exactly.
    pub fn effective_frequency_hz(&self) -> f64 {
        self.frequency_hz * self.op.f_scale
    }

    /// The machine shape.
    pub fn machine(&self) -> Machine {
        self.machine
    }

    /// The leakage model in use.
    pub fn leakage_model(&self) -> LeakageModel {
        self.leakage
    }

    /// Replaces the leakage model (sensitivity studies, or stress tests of
    /// the leakage↔temperature coupling).
    pub fn set_leakage_model(&mut self, leakage: LeakageModel) {
        self.leakage = leakage;
    }

    /// Sets the per-block nominal average dynamic power used by the leakage
    /// term (from a pilot run).
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the block count.
    pub fn set_nominal_dynamic(&mut self, nominal: Vec<f64>) {
        assert_eq!(nominal.len(), self.machine.block_count());
        self.nominal_dynamic = nominal;
    }

    /// The current nominal dynamic power vector.
    pub fn nominal_dynamic(&self) -> &[f64] {
        &self.nominal_dynamic
    }

    /// Per-block *dynamic* power in Watts for one interval of activity.
    ///
    /// # Panics
    ///
    /// Panics if the activity shape does not match the machine, or the
    /// interval covers zero cycles.
    pub fn dynamic_power(&self, act: &ActivityCounters) -> Vec<f64> {
        assert_eq!(act.partitions(), self.machine.partitions);
        assert_eq!(act.backends.len(), self.machine.backends);
        assert_eq!(act.tc_bank_accesses.len(), self.machine.tc_banks);
        assert!(act.cycles > 0, "interval covers zero cycles");
        let e = &self.energy;
        let m = &self.machine;
        let mut pj = vec![0.0f64; m.block_count()];
        let distributed = m.partitions > 1;
        let part_factor = if distributed {
            e.partition_access_factor
        } else {
            1.0
        };

        for p in 0..m.partitions {
            pj[m.index_of(BlockId::Rob(p as u8))] = (act.rob_writes[p] as f64 * e.rob_write
                + act.rob_reads[p] as f64 * e.rob_read)
                * part_factor
                + (act.rob_rl_writes[p] + act.rob_rl_reads[p]) as f64 * e.rob_rl_access;
            pj[m.index_of(BlockId::Rat(p as u8))] = (act.rat_reads[p] as f64 * e.rat_read
                + act.rat_writes[p] as f64 * e.rat_write)
                * part_factor;
        }
        pj[m.index_of(BlockId::Itlb)] = act.itlb_accesses as f64 * e.itlb_access;
        pj[m.index_of(BlockId::Deco)] = act.decoded_uops as f64 * e.decode_uop
            + act.steer_lookups as f64 * e.steer_lookup
            + act.copy_requests as f64 * e.copy_request;
        pj[m.index_of(BlockId::Bp)] = act.bp_accesses as f64 * e.bp_access;

        // Trace-cache fills are apportioned to banks by their access share,
        // keeping the total equal to the proportional part of the cache
        // power as the paper prescribes for the biased mapping (§4).
        let total_tc: u64 = act.tc_bank_accesses.iter().sum();
        for (k, &acc) in act.tc_bank_accesses.iter().enumerate() {
            let fill_share = if total_tc == 0 {
                0.0
            } else {
                act.tc_fills as f64 * acc as f64 / total_tc as f64
            };
            pj[m.index_of(BlockId::TcBank(k as u8))] =
                acc as f64 * e.tc_access + fill_share * e.tc_fill;
        }

        pj[m.index_of(BlockId::Ul2)] = act.ul2_accesses as f64 * e.ul2_access;

        let n_back = m.backends as f64;
        let total_copies: u64 = act.backends.iter().map(|b| b.copy_ops).sum();
        for (c, b) in act.backends.iter().enumerate() {
            let c8 = c as u8;
            pj[m.index_of(BlockId::Dl1(c8))] = b.dl1_accesses as f64 * e.dl1_access;
            pj[m.index_of(BlockId::Dtlb(c8))] = b.dtlb_accesses as f64 * e.dtlb_access;
            pj[m.index_of(BlockId::IntFu(c8))] = b.int_fu_ops as f64 * e.int_fu_op;
            pj[m.index_of(BlockId::FpFu(c8))] = b.fp_fu_ops as f64 * e.fp_fu_op;
            pj[m.index_of(BlockId::Irf(c8))] =
                b.irf_reads as f64 * e.irf_read + b.irf_writes as f64 * e.irf_write;
            pj[m.index_of(BlockId::Fprf(c8))] =
                b.fprf_reads as f64 * e.fprf_read + b.fprf_writes as f64 * e.fprf_write;
            pj[m.index_of(BlockId::IntSched(c8))] =
                b.iq_writes as f64 * e.iq_write + b.iq_issues as f64 * e.iq_issue;
            pj[m.index_of(BlockId::FpSched(c8))] =
                b.fpq_writes as f64 * e.iq_write + b.fpq_issues as f64 * e.iq_issue;
            let link_share = if total_copies == 0 {
                0.0
            } else {
                act.link_flits as f64 * b.copy_ops as f64 / total_copies as f64
            };
            pj[m.index_of(BlockId::CopySched(c8))] =
                b.copy_ops as f64 * e.copy_op + link_share * e.link_flit;
            pj[m.index_of(BlockId::Mob(c8))] = b.mob_allocs as f64 * e.mob_alloc
                + b.mob_searches as f64 * e.mob_search
                + act.disamb_broadcasts as f64 / n_back * e.disamb_broadcast;
        }

        // At the operating point: each operation's switching energy scales
        // as V², and the same cycle count covers 1/f_scale the wall time.
        // Both factors are exactly 1.0 at nominal, keeping this path
        // bit-identical to a model without DVFS support.
        let seconds = act.cycles as f64 / self.effective_frequency_hz();
        let scale = e.activity_scale * self.op.v_scale * self.op.v_scale;
        pj.into_iter()
            .map(|p| p * scale * 1e-12 / seconds)
            .collect()
    }

    /// Per-block *total* power (dynamic + leakage) given current block
    /// temperatures. Blocks in `gated` dissipate nothing.
    ///
    /// # Panics
    ///
    /// Panics if `temps_c` length does not match the block count.
    pub fn total_power(
        &self,
        act: &ActivityCounters,
        temps_c: &[f64],
        gated: &[BlockId],
    ) -> Vec<f64> {
        assert_eq!(temps_c.len(), self.machine.block_count());
        let mut power = self.dynamic_power(act);
        for (i, p) in power.iter_mut().enumerate() {
            *p += self.leakage.leakage_watts_scaled(
                self.nominal_dynamic[i],
                temps_c[i],
                self.op.v_scale,
            );
        }
        for &g in gated {
            power[self.machine.index_of(g)] = 0.0;
        }
        power
    }

    /// Sum of a power vector over the frontend blocks.
    pub fn frontend_watts(&self, power: &[f64]) -> f64 {
        self.machine
            .blocks()
            .iter()
            .zip(power)
            .filter(|(b, _)| b.is_frontend())
            .map(|(_, &w)| w)
            .sum()
    }

    /// Sum of a power vector over the backend blocks.
    pub fn backend_watts(&self, power: &[f64]) -> f64 {
        self.machine
            .blocks()
            .iter()
            .zip(power)
            .filter(|(b, _)| b.is_backend())
            .map(|(_, &w)| w)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(partitions: usize, banks: usize) -> PowerModel {
        PowerModel::new(
            Machine::new(partitions, 4, banks),
            EnergyTable::nm65(),
            LeakageModel::paper(),
            10e9,
        )
    }

    fn busy_activity(partitions: usize, banks: usize) -> ActivityCounters {
        let mut act = ActivityCounters::new(partitions, 4, banks);
        act.cycles = 1_000_000;
        act.committed_uops = 2_000_000;
        act.decoded_uops = 2_100_000;
        act.itlb_accesses = 150_000;
        act.bp_accesses = 500_000;
        act.tc_fills = 3_000;
        for p in 0..partitions {
            act.rat_reads[p] = 3_400_000 / partitions as u64;
            act.rat_writes[p] = 2_000_000 / partitions as u64;
            act.rob_writes[p] = 2_000_000 / partitions as u64;
            act.rob_reads[p] = 2_000_000 / partitions as u64;
        }
        for k in 0..banks {
            act.tc_bank_accesses[k] = 150_000 / banks as u64;
        }
        for b in &mut act.backends {
            b.iq_writes = 300_000;
            b.iq_issues = 300_000;
            b.fpq_writes = 80_000;
            b.fpq_issues = 80_000;
            b.irf_reads = 700_000;
            b.irf_writes = 400_000;
            b.fprf_reads = 160_000;
            b.fprf_writes = 90_000;
            b.int_fu_ops = 400_000;
            b.fp_fu_ops = 80_000;
            b.dl1_accesses = 180_000;
            b.dtlb_accesses = 180_000;
            b.mob_allocs = 200_000;
            b.mob_searches = 120_000;
            b.copy_ops = 40_000;
        }
        act.ul2_accesses = 10_000;
        act.disamb_broadcasts = 50_000;
        act.link_flits = 60_000;
        act
    }

    #[test]
    fn power_vector_shape_and_positivity() {
        let m = model(1, 2);
        let w = m.dynamic_power(&busy_activity(1, 2));
        assert_eq!(w.len(), m.machine().block_count());
        assert!(w.iter().all(|&x| x >= 0.0));
        assert!(w.iter().sum::<f64>() > 1.0, "busy machine draws real power");
    }

    #[test]
    fn frontend_share_calibrated() {
        // §1: the frontend accounts for ~30 % of dynamic power.
        let m = model(1, 2);
        let w = m.dynamic_power(&busy_activity(1, 2));
        let total: f64 = w.iter().sum();
        let fe = m.frontend_watts(&w);
        let share = fe / total;
        assert!(
            (0.20..0.45).contains(&share),
            "frontend dynamic share {share}"
        );
    }

    #[test]
    fn distributed_partitions_draw_less_each() {
        let cm = model(1, 2);
        let dm = model(2, 2);
        let cw = cm.dynamic_power(&busy_activity(1, 2));
        let dw = dm.dynamic_power(&busy_activity(2, 2));
        let c_rob = cw[cm.machine().index_of(BlockId::Rob(0))];
        let d_rob0 = dw[dm.machine().index_of(BlockId::Rob(0))];
        let d_rob1 = dw[dm.machine().index_of(BlockId::Rob(1))];
        // Each partition sees half the accesses at <half the energy.
        assert!(d_rob0 < c_rob * 0.30);
        // Total distributed ROB power is lower too (§4.1 reports ~11 %).
        assert!(d_rob0 + d_rob1 < c_rob);
    }

    #[test]
    fn leakage_rises_with_temperature() {
        let mut m = model(1, 2);
        let act = busy_activity(1, 2);
        let dynamic = m.dynamic_power(&act);
        m.set_nominal_dynamic(dynamic.clone());
        let cold = m.total_power(&act, &vec![45.0; dynamic.len()], &[]);
        let hot = m.total_power(&act, &vec![95.0; dynamic.len()], &[]);
        let cold_total: f64 = cold.iter().sum();
        let hot_total: f64 = hot.iter().sum();
        assert!(hot_total > cold_total * 1.1);
    }

    #[test]
    fn gated_bank_draws_nothing() {
        let mut m = model(1, 3);
        let mut act = busy_activity(1, 3);
        act.tc_bank_accesses[2] = 0;
        m.set_nominal_dynamic(vec![1.0; m.machine().block_count()]);
        let w = m.total_power(
            &act,
            &vec![70.0; m.machine().block_count()],
            &[BlockId::TcBank(2)],
        );
        assert_eq!(w[m.machine().index_of(BlockId::TcBank(2))], 0.0);
        assert!(w[m.machine().index_of(BlockId::TcBank(0))] > 0.0);
    }

    #[test]
    fn idle_interval_draws_only_leakage() {
        let mut m = model(1, 2);
        let mut act = ActivityCounters::new(1, 4, 2);
        act.cycles = 1000;
        let w = m.dynamic_power(&act);
        assert!(w.iter().all(|&x| x == 0.0));
        m.set_nominal_dynamic(vec![2.0; m.machine().block_count()]);
        let total = m.total_power(&act, &vec![45.0; m.machine().block_count()], &[]);
        for &x in &total {
            assert!((x - 0.6).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "zero cycles")]
    fn zero_cycle_interval_panics() {
        let m = model(1, 2);
        let act = ActivityCounters::new(1, 4, 2);
        m.dynamic_power(&act);
    }

    #[test]
    fn nominal_operating_point_is_bit_identical() {
        let mut m = model(1, 2);
        let act = busy_activity(1, 2);
        let before = m.dynamic_power(&act);
        m.set_operating_point(OperatingPoint::nominal());
        let after = m.dynamic_power(&act);
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            m.effective_frequency_hz().to_bits(),
            10e9f64.to_bits(),
            "nominal f_scale must not perturb the frequency"
        );
    }

    #[test]
    fn scaled_point_cuts_dynamic_and_leakage_power() {
        let mut m = model(1, 2);
        let act = busy_activity(1, 2);
        let nominal_dyn = m.dynamic_power(&act);
        m.set_nominal_dynamic(nominal_dyn.clone());
        let temps = vec![80.0; nominal_dyn.len()];
        let full: f64 = m.total_power(&act, &temps, &[]).iter().sum();
        m.set_operating_point(OperatingPoint::scaled(0.7, 0.85));
        let scaled: f64 = m.total_power(&act, &temps, &[]).iter().sum();
        // Dynamic drops by f·V² = 0.506, leakage by V² = 0.7225; the total
        // must land strictly between those two factors of the original.
        assert!(scaled < full * 0.7225, "scaled {scaled} vs full {full}");
        assert!(scaled > full * 0.5, "scaled {scaled} vs full {full}");
        // And wall time per cycle stretches by 1/f_scale.
        assert!((m.effective_frequency_hz() - 7e9).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "bad operating point")]
    fn overvolted_point_rejected() {
        model(1, 2).set_operating_point(OperatingPoint::scaled(1.0, 1.2));
    }

    #[test]
    fn watts_scale_inversely_with_time() {
        let m = model(1, 2);
        let mut act = busy_activity(1, 2);
        let w1: f64 = m.dynamic_power(&act).iter().sum();
        act.cycles *= 2; // same events over twice the time
        let w2: f64 = m.dynamic_power(&act).iter().sum();
        assert!((w1 / w2 - 2.0).abs() < 1e-9);
    }
}
