//! Figure 14: the complete distributed frontend — bank hopping + biasing,
//! distributed rename/commit, and their combination, against the baseline,
//! averaged over the 26 SPEC2000 profiles.
//!
//! Paper values: the combination reduces the reorder buffer, rename table
//! and trace cache rises by ~35 %, ~32 % and ~25 % respectively.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront::{figure14, run_app, ExperimentConfig};
use distfront_bench::{bench_uops, evaluation_apps, kernel_app};
use std::hint::black_box;

fn regenerate_figure() {
    let uops = bench_uops();
    println!("\nregenerating Figure 14 ({uops} uops x 26 apps x 4 configs)...");
    let table = figure14(evaluation_apps(), uops);
    println!("{table}");
    println!("paper shape: the combination is synergistic — it keeps the strong");
    println!("ROB/RAT effect of distribution and the trace-cache effect of hopping.\n");
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let app = kernel_app();
    c.bench_function("fig14/combined_app_run", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig::combined().with_uops(20_000);
            black_box(run_app(&cfg, &app))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
