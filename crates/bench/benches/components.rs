//! Component micro-benchmarks: the building blocks the experiments lean on.
//! These track the simulator's own performance so regressions in the
//! substrate show up in `cargo bench` history.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront_bench::kernel_app;
use distfront_cache::trace_cache::{TraceCache, TraceCacheConfig, TraceKey};
use distfront_power::{EnergyTable, LeakageModel, Machine, PowerModel};
use distfront_thermal::{Floorplan, PackageConfig, ThermalNetwork, ThermalSolver};
use distfront_trace::TraceGenerator;
use distfront_uarch::{DistributedRob, ProcessorConfig, Simulator};
use std::hint::black_box;

fn bench_trace_generation(c: &mut Criterion) {
    c.bench_function("components/trace_generator_10k_uops", |b| {
        let mut generator = TraceGenerator::new(&kernel_app(), 1);
        b.iter(|| {
            for _ in 0..10_000 {
                black_box(generator.next_uop());
            }
        })
    });
}

fn bench_trace_cache(c: &mut Criterion) {
    c.bench_function("components/trace_cache_lookup_insert_10k", |b| {
        let mut tc = TraceCache::new(TraceCacheConfig::hopping_and_biasing());
        let keys: Vec<TraceKey> = (0..512u64)
            .map(|i| TraceKey::new(0x40_0000 + i * 256, (i % 8) as u8))
            .collect();
        b.iter(|| {
            for (i, &k) in keys.iter().cycle().take(10_000).enumerate() {
                if !tc.lookup(k) {
                    tc.insert(k);
                }
                if i % 1000 == 0 {
                    tc.hop();
                    tc.rebalance(&[60.0, 70.0, 65.0]);
                }
            }
            black_box(tc.stats())
        })
    });
}

fn bench_distributed_commit(c: &mut Criterion) {
    c.bench_function("components/rob_rl_walk_4k_commits", |b| {
        b.iter(|| {
            let mut rob = DistributedRob::new(2, 128);
            let mut committed = 0;
            let mut seq = 0u64;
            while committed < 4_096 {
                while !rob.is_partition_full((seq % 2) as usize) && rob.len() < 200 {
                    rob.push(seq, (seq % 2) as usize).unwrap();
                    rob.mark_ready(seq);
                    seq += 1;
                }
                committed += rob.commit(8).len();
            }
            black_box(rob.read_ops())
        })
    });
}

fn bench_thermal(c: &mut Criterion) {
    let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
    let net = ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper());
    c.bench_function("components/thermal_steady_solve", |b| {
        let solver = ThermalSolver::new(net.clone());
        let power = vec![0.8; net.block_count()];
        b.iter(|| black_box(solver.solve_steady(&power)))
    });
    c.bench_function("components/thermal_rk4_1ms", |b| {
        let mut solver = ThermalSolver::new(net.clone());
        let power = vec![0.8; net.block_count()];
        b.iter(|| {
            solver.advance(&power, 1e-3);
            black_box(solver.block_temperatures()[0])
        })
    });
}

fn bench_power_model(c: &mut Criterion) {
    c.bench_function("components/power_model_interval", |b| {
        let machine = Machine::new(2, 4, 3);
        let mut model = PowerModel::new(machine, EnergyTable::nm65(), LeakageModel::paper(), 10e9);
        let mut sim = Simulator::new(
            {
                let mut p = ProcessorConfig::distributed_rename_commit();
                p.trace_cache =
                    distfront_cache::trace_cache::TraceCacheConfig::hopping_and_biasing();
                p
            },
            &kernel_app(),
            1,
        );
        let act = sim.step(u64::MAX, 20_000).activity;
        model.set_nominal_dynamic(vec![0.5; machine.block_count()]);
        let temps = vec![70.0; machine.block_count()];
        b.iter(|| black_box(model.total_power(&act, &temps, &[])))
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("components/simulator_50k_uops", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(ProcessorConfig::hpca05_baseline(), &kernel_app(), 1);
            black_box(sim.run(50_000))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_trace_generation, bench_trace_cache, bench_distributed_commit,
              bench_thermal, bench_power_model, bench_simulator
}
criterion_main!(benches);
