//! Figure 12: distributed renaming and commit — reduction of the
//! temperature rise (AbsMax / Average / AvgMax) for the reorder buffer,
//! rename table and trace cache, plus the slowdown, averaged over the 26
//! SPEC2000 profiles.
//!
//! Paper values: ~32/33 % (ROB peak/average), ~34/35 % (RAT), an indirect
//! trace-cache reduction, and a 2 % slowdown.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront::{figure12, run_app, ExperimentConfig};
use distfront_bench::{bench_uops, evaluation_apps, kernel_app};
use std::hint::black_box;

fn regenerate_figure() {
    let uops = bench_uops();
    println!("\nregenerating Figure 12 ({uops} uops x 26 apps x 2 configs)...");
    let table = figure12(evaluation_apps(), uops);
    println!("{table}");
    println!("paper shape: ROB and RAT rises cut by roughly a third with ~2 %");
    println!("slowdown; the trace cache benefits indirectly via heat spreading.\n");
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let app = kernel_app();
    c.bench_function("fig12/distributed_app_run", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig::distributed_rename_commit().with_uops(20_000);
            black_box(run_app(&cfg, &app))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
