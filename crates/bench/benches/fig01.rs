//! Figure 1: temperature comparison of the processor elements on the
//! baseline machine — peak and average increase over the 45 °C ambient for
//! Processor / Frontend / Backend / UL2, averaged over the 26 SPEC2000
//! profiles.
//!
//! The figure is regenerated and printed once; Criterion then times a
//! single-application baseline run as the tracked kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront::{figure1, run_app, ExperimentConfig};
use distfront_bench::{bench_uops, evaluation_apps, kernel_app};
use std::hint::black_box;

fn regenerate_figure() {
    let uops = bench_uops();
    println!("\nregenerating Figure 1 ({uops} uops x 26 apps)...");
    let table = figure1(evaluation_apps(), uops);
    println!("{table}");
    println!("paper shape: frontend among the hottest elements (~62 C peak");
    println!("rise, ~25 C average rise); UL2 the coolest.\n");
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let app = kernel_app();
    c.bench_function("fig01/baseline_app_run", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig::baseline().with_uops(20_000);
            black_box(run_app(&cfg, &app))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
