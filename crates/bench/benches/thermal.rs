//! Transient-integrator benchmark: RK4 sub-stepping vs the cached
//! matrix-exponential propagator, advancing the paper floorplan's thermal
//! network by the engine's per-interval step. Before the Criterion timing
//! loops run, the comparison is measured head-to-head and the numbers are
//! written to `BENCH_thermal.json` at the workspace root (override the
//! path with `DISTFRONT_BENCH_JSON`), so CI tracks an interval-advance
//! baseline across PRs. Runs in `--test` mode too — the measurement is a
//! few thousand microsecond-scale advances.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront_power::Machine;
use distfront_thermal::{ExpPropagator, Floorplan, PackageConfig, ThermalNetwork, ThermalSolver};
use std::hint::black_box;
use std::time::Instant;

/// The engine's default interval step on the paper machine: 200 k cycles
/// at 10 GHz, advanced as two half-steps per interval.
const HALF_INTERVAL_S: f64 = 1e-5;

fn paper_network() -> ThermalNetwork {
    let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
    ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper())
}

fn interval_power(n: usize) -> Vec<f64> {
    (0..n).map(|i| 0.2 + 0.05 * (i % 7) as f64).collect()
}

/// Times `advances` half-interval advances and returns ns per advance.
fn time_advances(mut advance: impl FnMut(), advances: u32) -> f64 {
    // One warm-up advance first: the propagator path factors its (Φ, Ψ)
    // pair on first use, and that one-time cost is amortized over the
    // thousands of intervals of every sweep cell, so steady-state cost is
    // the honest comparison (the build itself is ~1 ms, once per cell).
    advance();
    let t0 = Instant::now();
    for _ in 0..advances {
        advance();
    }
    t0.elapsed().as_secs_f64() * 1e9 / f64::from(advances)
}

fn comparison() {
    let net = paper_network();
    let power = interval_power(net.block_count());
    let advances = 2_000u32;

    let mut rk4 = ThermalSolver::new(net.clone());
    rk4.set_steady_state(&power);
    let rk4_ns = time_advances(|| rk4.advance(&power, HALF_INTERVAL_S), advances);

    let mut expm = ExpPropagator::new(net.clone());
    expm.set_steady_state(&power);
    let expm_ns = time_advances(|| expm.advance(&power, HALF_INTERVAL_S), advances);

    let speedup = rk4_ns / expm_ns;
    println!(
        "\nthermal interval advance ({} nodes, {HALF_INTERVAL_S} s half-interval): \
         rk4 {rk4_ns:.0} ns | expm {expm_ns:.0} ns | speedup {speedup:.1}x\n",
        net.node_count()
    );

    let json = format!(
        "{{\n  \"bench\": \"thermal_interval_advance\",\n  \"nodes\": {},\n  \
         \"half_interval_s\": {HALF_INTERVAL_S},\n  \"advances\": {advances},\n  \
         \"rk4_ns_per_advance\": {rk4_ns:.1},\n  \"expm_ns_per_advance\": {expm_ns:.1},\n  \
         \"speedup\": {speedup:.2}\n}}\n",
        net.node_count()
    );
    let path = std::env::var("DISTFRONT_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_thermal.json").into()
    });
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    comparison();
    let net = paper_network();
    let power = interval_power(net.block_count());

    c.bench_function("thermal/interval_advance_rk4", |b| {
        let mut solver = ThermalSolver::new(net.clone());
        solver.set_steady_state(&power);
        b.iter(|| {
            solver.advance(&power, HALF_INTERVAL_S);
            black_box(solver.block_temperatures()[0])
        })
    });
    c.bench_function("thermal/interval_advance_expm", |b| {
        let mut solver = ExpPropagator::new(net.clone());
        solver.set_steady_state(&power);
        b.iter(|| {
            solver.advance(&power, HALF_INTERVAL_S);
            black_box(solver.block_temperatures()[0])
        })
    });
    c.bench_function("thermal/propagator_build", |b| {
        b.iter(|| {
            let mut solver = ExpPropagator::new(net.clone());
            solver.advance(&power, HALF_INTERVAL_S);
            black_box(solver.cached_steps())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(200);
    targets = bench
}
criterion_main!(benches);
