//! Figure 13: the sub-banked thermal-aware trace cache — address biasing,
//! blank silicon, bank hopping, and bank hopping + address biasing, each
//! against the baseline, averaged over the 26 SPEC2000 profiles.
//!
//! Paper values: biasing alone trims the TC peak (~4 %) but not the average;
//! hopping cuts average ~17 % / peak ~12 % and beats statically-gated blank
//! silicon; the combination reaches 14 % peak / 18 % average at a 3–4 %
//! slowdown.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront::{figure13, run_app, ExperimentConfig};
use distfront_bench::{bench_uops, evaluation_apps, kernel_app};
use std::hint::black_box;

fn regenerate_figure() {
    let uops = bench_uops();
    println!("\nregenerating Figure 13 ({uops} uops x 26 apps x 5 configs)...");
    let table = figure13(evaluation_apps(), uops);
    println!("{table}");
    println!("paper shape: hopping > blank silicon on the trace-cache peak;");
    println!("biasing alone moves the peak, not the average.\n");
}

fn bench(c: &mut Criterion) {
    regenerate_figure();
    let app = kernel_app();
    c.bench_function("fig13/hopping_app_run", |b| {
        b.iter(|| {
            let cfg = ExperimentConfig::hopping_and_biasing().with_uops(20_000);
            black_box(run_app(&cfg, &app))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
