//! Scenario sweep: runs every registered scenario on the smoke suite,
//! prints the summary table (the same rows `distfront-scenarios --all
//! --smoke` emits), and then times a single DTM-managed scenario cell as
//! the tracked kernel. Honours `DISTFRONT_BENCH_UOPS` like the figure
//! benches.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront::scenarios::{self, RunOptions};
use distfront_bench::bench_uops;
use std::hint::black_box;

fn regenerate_summary() {
    let uops = bench_uops().min(100_000);
    let opts = RunOptions::smoke().with_uops(uops);
    println!(
        "\nscenario sweep: {} scenarios x {} apps x {uops} uops, {} workers...",
        scenarios::registry().len(),
        opts.apps().len(),
        opts.workers
    );
    let reports: Vec<_> = scenarios::registry().iter().map(|s| s.run(&opts)).collect();
    println!("{}", scenarios::summary_table(&reports));
}

fn bench(c: &mut Criterion) {
    regenerate_summary();
    let dvfs = scenarios::by_name("dtm-dvfs").expect("registered scenario");
    c.bench_function("scenarios/dtm_dvfs_smoke_suite", |b| {
        let opts = RunOptions::smoke().with_uops(20_000);
        b.iter(|| black_box(dvfs.run(&opts)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
