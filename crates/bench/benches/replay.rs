//! Record-once / replay-many benchmark: the cost of a thermal/DTM sweep
//! cell driven live (full core simulation) vs replayed from a recorded
//! [`ActivityTrace`].
//!
//! Before the Criterion timing loops run, the comparison is measured
//! head-to-head on a small suite: every cell runs live N times, then the
//! suite is recorded once and replayed N times under a power-level DTM
//! sweep. The same head-to-head then repeats for the DFAT v2 ladder — a
//! core-perturbing global-DVFS sweep whose recordings carry a
//! multi-operating-point family, so replay selects among recorded points
//! instead of rejecting the policy. The numbers — per-cell live and
//! replay times, the recording overhead, the replay speedups, and the
//! encoded trace bytes per cell for both the nominal-only and the
//! multi-point family — are written to `BENCH_replay.json` at the
//! workspace root (override the path with `DISTFRONT_BENCH_REPLAY_JSON`),
//! so CI tracks the record/replay trajectory across PRs; the acceptance
//! bar is ≥ 2× per cell, and the measured speedup is typically far
//! higher because replay skips the core simulator entirely. Byte
//! identity between the live and replayed reports is asserted, not
//! assumed. Runs in `--test` mode too.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use distfront::emergency::EmergencyPolicy;
use distfront::engine::{CoupledEngine, TraceMode, TraceStore};
use distfront::{DtmSpec, DvfsPolicy, ExperimentConfig, SweepRunner};
use distfront_bench::kernel_app;
use distfront_trace::{AppProfile, Workload};
use std::hint::black_box;

/// Per-app run length: long enough that a cell closes many intervals,
/// short enough for CI (`DISTFRONT_BENCH_UOPS` raises it).
fn uops() -> u64 {
    std::env::var("DISTFRONT_BENCH_UOPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000)
}

fn suite() -> Vec<AppProfile> {
    vec![
        AppProfile::test_tiny(),
        kernel_app(),
        *AppProfile::by_name("mcf").expect("profile exists"),
    ]
}

/// The power-side sweep driven from the recording: the emergency throttle
/// at a trip that engages on the hot cells (a pure thermal/DTM change,
/// exactly what record/replay accelerates).
fn throttled(uops: u64) -> ExperimentConfig {
    ExperimentConfig::baseline()
        .with_uops(uops)
        .with_dtm(DtmSpec::Emergency(EmergencyPolicy::with_threshold(100.0)))
}

/// Per-cell live vs record-once-replay-many numbers for one sweep pair:
/// the suite runs live under `replay_cfg` `rounds` times, is recorded
/// once under `record_cfg`, and replays `rounds` times from that store.
/// Byte identity between live and replayed reports is asserted. Returns
/// `(live_ms, replay_ms, record_ms, trace_bytes)` per cell.
fn head_to_head(
    label: &str,
    record_cfg: &ExperimentConfig,
    replay_cfg: &ExperimentConfig,
    apps: &[distfront_trace::AppProfile],
    rounds: u32,
) -> (f64, f64, f64, f64) {
    // Live reference: the target sweep, simulated end to end.
    let t0 = Instant::now();
    let mut live = None;
    for _ in 0..rounds {
        live = Some(SweepRunner::serial().try_suite(replay_cfg, apps));
    }
    let live_s = t0.elapsed().as_secs_f64();
    let live = live.expect("at least one live round");
    assert!(
        live.is_complete(),
        "{label}: live bench cells must not fail"
    );

    let store = Arc::new(TraceStore::new());
    let t1 = Instant::now();
    SweepRunner::serial()
        .with_trace_mode(TraceMode::Record(Arc::clone(&store)))
        .try_suite(record_cfg, apps);
    let record_s = t1.elapsed().as_secs_f64();
    let trace_bytes: usize = store.traces().iter().map(|t| t.encode().len()).sum();
    let traces = store.len();

    let t2 = Instant::now();
    let mut replayed = None;
    for _ in 0..rounds {
        replayed = Some(
            SweepRunner::serial()
                .with_trace_mode(TraceMode::Replay(Arc::clone(&store)))
                .try_suite(replay_cfg, apps),
        );
    }
    let replay_s = t2.elapsed().as_secs_f64();
    let replayed = replayed.expect("at least one replay round");
    assert_eq!(
        replayed.replayed(),
        apps.len(),
        "{label}: every replay cell must come from the recording"
    );
    assert_eq!(
        replayed, live,
        "{label}: replay diverged from live simulation"
    );

    let cells = (apps.len() as u32 * rounds) as f64;
    (
        live_s * 1e3 / cells,
        replay_s * 1e3 / cells,
        record_s * 1e3 / apps.len() as f64,
        trace_bytes as f64 / traces as f64,
    )
}

fn comparison() {
    let uops = uops();
    let apps = suite();
    let rounds = 3u32;
    println!(
        "\nreplay: {} apps x {uops} uops, {rounds} live rounds vs record-once-replay-{rounds}...",
        apps.len()
    );

    // Power-side sweep from a nominal-only recording: record under the
    // plain baseline (the uarch side the sweep shares), replay the
    // emergency-throttled variant from it.
    let base = ExperimentConfig::baseline().with_uops(uops);
    let (live_ms, replay_ms, record_ms, bytes) =
        head_to_head("nominal", &base, &throttled(uops), &apps, rounds);
    let speedup = live_ms / replay_ms;
    println!(
        "nominal: live {live_ms:.2} ms/cell | replay {replay_ms:.2} ms/cell | \
         speedup {speedup:.1}x (record once: {record_ms:.2} ms/cell, {bytes:.0} trace B/cell; \
         results bit-identical)"
    );

    // The DFAT v2 ladder: a core-perturbing global-DVFS sweep, recorded
    // under its own policy so each trace carries the nominal + scaled
    // operating points, then replayed by per-interval point selection.
    let ladder = ExperimentConfig::baseline()
        .with_uops(uops)
        .with_dtm(DtmSpec::GlobalDvfs(DvfsPolicy::with_trip(50.0)));
    let (l_live_ms, l_replay_ms, l_record_ms, l_bytes) =
        head_to_head("ladder", &ladder, &ladder, &apps, rounds);
    let l_speedup = l_live_ms / l_replay_ms;
    println!(
        "ladder (dvfs): live {l_live_ms:.2} ms/cell | replay {l_replay_ms:.2} ms/cell | \
         speedup {l_speedup:.1}x (record once: {l_record_ms:.2} ms/cell, {l_bytes:.0} trace \
         B/cell; results bit-identical)\n"
    );

    let json = format!(
        "{{\n  \"bench\": \"replay_sweep_cell\",\n  \"apps\": {},\n  \"uops\": {uops},\n  \
         \"rounds\": {rounds},\n  \"live_ms_per_cell\": {live_ms:.3},\n  \
         \"replay_ms_per_cell\": {replay_ms:.3},\n  \"record_ms_per_cell\": {record_ms:.3},\n  \
         \"trace_bytes_per_cell\": {bytes:.0},\n  \"speedup\": {speedup:.2},\n  \
         \"ladder_live_ms_per_cell\": {l_live_ms:.3},\n  \
         \"ladder_replay_ms_per_cell\": {l_replay_ms:.3},\n  \
         \"ladder_record_ms_per_cell\": {l_record_ms:.3},\n  \
         \"ladder_trace_bytes_per_cell\": {l_bytes:.0},\n  \"ladder_speedup\": {l_speedup:.2}\n}}\n",
        apps.len(),
    );
    let path = std::env::var("DISTFRONT_BENCH_REPLAY_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json").into());
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    comparison();

    let uops = uops();
    let cfg = ExperimentConfig::baseline().with_uops(uops);
    let app = AppProfile::test_tiny();
    let (recorded, _) = CoupledEngine::new(&cfg, &app).run_recorded();
    let trace = Arc::new(recorded.expect("recording the bench kernel").1);

    c.bench_function("replay/cell_live", |b| {
        b.iter(|| black_box(CoupledEngine::new(&cfg, &app).run().unwrap()))
    });
    c.bench_function("replay/cell_replayed", |b| {
        b.iter(|| {
            black_box(
                CoupledEngine::new(&cfg, &app)
                    .with_replay(Arc::clone(&trace))
                    .run()
                    .unwrap(),
            )
        })
    });
    c.bench_function("replay/trace_codec_roundtrip", |b| {
        let bytes = trace.encode();
        b.iter(|| {
            black_box(
                distfront_trace::ActivityTrace::decode(black_box(&bytes))
                    .unwrap()
                    .intervals
                    .len(),
            )
        })
    });

    // Keep the workload plumbing honest under Criterion too: a phased
    // workload through the engine in one timed kernel.
    c.bench_function("replay/phased_cell_live", |b| {
        let phased = Workload::Phased(distfront_trace::PhasedProfile::alternating(
            "bench-tiny-gzip",
            AppProfile::test_tiny(),
            kernel_app(),
            5_000,
        ));
        b.iter(|| {
            black_box(
                CoupledEngine::for_workload(&cfg, phased.clone())
                    .run()
                    .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
