//! Ablations of the design choices called out in DESIGN.md:
//!
//! * **hop interval** — how often the gated trace-cache bank rotates
//!   (the paper fixes 10 M cycles; here swept relative to the run length),
//! * **bias rule strength** — the "halve the share per N °C" constant of
//!   the thermal-aware mapping (§3.2.2; the paper found 3 °C best),
//! * **steering policy** — dependence-aware versus round-robin, which
//!   changes the inter-cluster copy traffic the distributed frontend sees.
//!
//! Each sweep is printed once; Criterion then times one representative
//! configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront::{average_temps, run_suite, slowdown, ExperimentConfig, AMBIENT_C};
use distfront_bench::{bench_uops, kernel_app};
use distfront_cache::mapping::MappingPolicy;
use distfront_trace::AppProfile;
use distfront_uarch::steer::SteeringPolicy;
use std::hint::black_box;

fn ablation_apps() -> Vec<AppProfile> {
    ["gzip", "crafty", "swim", "art"]
        .iter()
        .map(|n| *AppProfile::by_name(n).unwrap())
        .collect()
}

fn sweep_hop_interval(uops: u64) {
    println!("\n-- ablation: hop interval (bank hopping, TC metrics) --");
    let apps = ablation_apps();
    let base = run_suite(&ExperimentConfig::baseline().with_uops(uops), &apps);
    let bt = average_temps(&base);
    for divisor in [1u64, 2, 4, 8] {
        let mut cfg = ExperimentConfig::bank_hopping().with_uops(uops);
        cfg.interval_cycles = (cfg.interval_cycles / divisor).max(10_000);
        let interval = cfg.interval_cycles;
        let res = run_suite(&cfg, &apps);
        let t = average_temps(&res);
        let tc = bt.trace_cache.reduction_vs(&t.trace_cache, AMBIENT_C);
        println!(
            "  interval {interval:>9} cycles: TC peak -{:.1}% avg -{:.1}%  slowdown {:+.1}%",
            tc.abs_max_c * 100.0,
            tc.average_c * 100.0,
            slowdown(&base, &res) * 100.0
        );
    }
}

fn sweep_bias_strength(uops: u64) {
    println!("\n-- ablation: bias rule (halve share per N degC) --");
    let apps = ablation_apps();
    let base = run_suite(&ExperimentConfig::baseline().with_uops(uops), &apps);
    let bt = average_temps(&base);
    for step in [1.0f64, 3.0, 6.0, 12.0] {
        let mut cfg = ExperimentConfig::hopping_and_biasing().with_uops(uops);
        cfg.processor.trace_cache.policy = MappingPolicy { halve_step_c: step };
        let res = run_suite(&cfg, &apps);
        let t = average_temps(&res);
        let tc = bt.trace_cache.reduction_vs(&t.trace_cache, AMBIENT_C);
        println!(
            "  halve per {step:>4.1} C: TC peak -{:.1}% avg -{:.1}%  slowdown {:+.1}%",
            tc.abs_max_c * 100.0,
            tc.average_c * 100.0,
            slowdown(&base, &res) * 100.0
        );
    }
    println!("  (paper: 3 C per factor of two)");
}

fn sweep_steering(uops: u64) {
    println!("\n-- ablation: steering policy (distributed frontend) --");
    let apps = ablation_apps();
    let base = run_suite(&ExperimentConfig::baseline().with_uops(uops), &apps);
    for policy in [
        SteeringPolicy::DependenceBalance,
        SteeringPolicy::RoundRobin,
    ] {
        let mut cfg = ExperimentConfig::distributed_rename_commit().with_uops(uops);
        cfg.processor.steering = policy;
        let res = run_suite(&cfg, &apps);
        let copies: f64 = res.iter().map(|r| r.cpi).sum::<f64>() / res.len() as f64;
        println!(
            "  {policy:?}: slowdown {:+.1}% (mean CPI {copies:.2})",
            slowdown(&base, &res) * 100.0
        );
    }
}

fn bench(c: &mut Criterion) {
    let uops = bench_uops() / 2;
    sweep_hop_interval(uops);
    sweep_bias_strength(uops);
    sweep_steering(uops);
    println!();

    c.bench_function("ablation/round_robin_app_run", |b| {
        let app = kernel_app();
        b.iter(|| {
            let mut cfg = ExperimentConfig::distributed_rename_commit().with_uops(20_000);
            cfg.processor.steering = SteeringPolicy::RoundRobin;
            black_box(distfront::run_app(&cfg, &app))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
