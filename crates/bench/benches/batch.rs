//! Batched lockstep propagation benchmark: ns per cell-advance through the
//! [`BatchPropagator`] at cohort sizes 1/8/64/256 against the serial
//! [`ExpPropagator`] path the sweep executor used per cell. Before the
//! Criterion timing loops run, the comparison is measured head-to-head,
//! bit-identity between the batched columns and serial advances is
//! asserted, and the numbers are written to `BENCH_batch.json` at the
//! workspace root (override the path with `DISTFRONT_BENCH_JSON`), so CI
//! tracks the batching win across PRs. Runs in `--test` mode too.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront_power::Machine;
use distfront_thermal::{BatchPropagator, ExpPropagator, Floorplan, PackageConfig, ThermalNetwork};
use std::hint::black_box;
use std::time::Instant;

/// The engine's default interval step on the paper machine: 200 k cycles
/// at 10 GHz, advanced as two half-steps per interval.
const HALF_INTERVAL_S: f64 = 1e-5;

const COHORTS: [usize; 4] = [1, 8, 64, 256];

fn paper_network() -> ThermalNetwork {
    let fp = Floorplan::for_machine(Machine::new(1, 4, 2));
    ThermalNetwork::from_floorplan(&fp, &PackageConfig::paper())
}

/// Cell `j`'s per-block interval power: every lane slightly different, so
/// the batched columns are not degenerate copies of each other.
fn cell_power(nb: usize, j: usize) -> Vec<f64> {
    (0..nb).map(|i| 0.2 + 0.05 * ((i + j) % 7) as f64).collect()
}

/// Column-major `nb × n_cells` power matrix the batch API consumes.
fn power_matrix(nb: usize, n_cells: usize) -> Vec<f64> {
    (0..n_cells).flat_map(|j| cell_power(nb, j)).collect()
}

/// A batch seeded like the sweep's cohorts: every column starts from its
/// own cell's warm (steady-state) temperatures.
fn seeded_batch(net: &ThermalNetwork, n_cells: usize) -> BatchPropagator {
    let mut batch = BatchPropagator::new(net.clone(), n_cells);
    for j in 0..n_cells {
        let steady =
            ExpPropagator::new(net.clone()).solve_steady(&cell_power(net.block_count(), j));
        batch.set_column(j, &steady);
    }
    batch
}

/// Asserts the batched columns stay bit-identical to N serial advances —
/// the contract the sweep's report equality rests on, checked here so a
/// perf-motivated kernel change can never silently trade bits for speed.
fn assert_bit_identity(net: &ThermalNetwork) {
    let nb = net.block_count();
    let n_cells = 8;
    let mut batch = seeded_batch(net, n_cells);
    let powers = power_matrix(nb, n_cells);
    let mut serial: Vec<ExpPropagator> = (0..n_cells)
        .map(|j| {
            let mut p = ExpPropagator::new(net.clone());
            p.set_temperatures(batch.column(j).to_vec());
            p
        })
        .collect();
    for step in 0..6 {
        // A mid-run step change (a throttled interval) exercises the
        // propagator cache on both sides.
        let dt = if step == 3 {
            HALF_INTERVAL_S * 2.0
        } else {
            HALF_INTERVAL_S
        };
        batch.advance_all(&powers, dt);
        for (j, p) in serial.iter_mut().enumerate() {
            p.advance(&powers[j * nb..(j + 1) * nb], dt);
        }
    }
    for (j, p) in serial.iter().enumerate() {
        for (i, (b, s)) in batch.column(j).iter().zip(p.temperatures()).enumerate() {
            assert_eq!(
                b.to_bits(),
                s.to_bits(),
                "cell {j} node {i}: batch {b} vs serial {s}"
            );
        }
    }
    println!("bit-identity: {n_cells} batched columns == serial advances, bit for bit");
}

/// Times `advances` calls of `advance` and returns ns per *cell*-advance.
fn time_cell_advances(mut advance: impl FnMut(), advances: u32, cells: usize) -> f64 {
    // One warm-up advance factors the (Φ, Ψ) pair; steady-state cost is
    // the honest comparison (the build is once per cohort, not per cell).
    advance();
    let t0 = Instant::now();
    for _ in 0..advances {
        advance();
    }
    t0.elapsed().as_secs_f64() * 1e9 / f64::from(advances) / cells as f64
}

fn comparison() {
    let net = paper_network();
    let nb = net.block_count();
    assert_bit_identity(&net);

    let advances = 2_000u32;
    let mut serial = ExpPropagator::new(net.clone());
    let power = cell_power(nb, 0);
    serial.set_steady_state(&power);
    let serial_ns = time_cell_advances(|| serial.advance(&power, HALF_INTERVAL_S), advances, 1);

    let mut lines = String::new();
    let mut batched_ns = Vec::new();
    for &n_cells in &COHORTS {
        let mut batch = seeded_batch(&net, n_cells);
        let powers = power_matrix(nb, n_cells);
        // Scale the call count so every cohort size does comparable work.
        let calls = (advances / n_cells as u32).max(8);
        let ns = time_cell_advances(
            || batch.advance_all(&powers, HALF_INTERVAL_S),
            calls,
            n_cells,
        );
        lines.push_str(&format!(
            "  cohort {n_cells:>3}: {ns:>7.0} ns/cell-advance ({:.1}x vs serial)\n",
            serial_ns / ns
        ));
        batched_ns.push((n_cells, ns));
    }
    println!(
        "\nbatched lockstep advance ({} nodes, {HALF_INTERVAL_S} s half-interval):\n\
           serial     : {serial_ns:>7.0} ns/cell-advance\n{lines}",
        net.node_count()
    );

    let at = |n: usize| {
        batched_ns
            .iter()
            .find(|(c, _)| *c == n)
            .map(|(_, ns)| *ns)
            .expect("cohort size measured")
    };
    let json = format!(
        "{{\n  \"bench\": \"batched_lockstep_advance\",\n  \"nodes\": {},\n  \
         \"half_interval_s\": {HALF_INTERVAL_S},\n  \
         \"serial_ns_per_cell_advance\": {serial_ns:.1},\n  \
         \"batched_ns_per_cell_advance\": {{\n    \"1\": {:.1},\n    \"8\": {:.1},\n    \
         \"64\": {:.1},\n    \"256\": {:.1}\n  }},\n  \
         \"speedup_at_64\": {:.2},\n  \"speedup_at_256\": {:.2}\n}}\n",
        net.node_count(),
        at(1),
        at(8),
        at(64),
        at(256),
        serial_ns / at(64),
        serial_ns / at(256),
    );
    let path = std::env::var("DISTFRONT_BENCH_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_batch.json").into());
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    comparison();
    let net = paper_network();
    let nb = net.block_count();

    c.bench_function("batch/serial_cell_advance", |b| {
        let mut serial = ExpPropagator::new(net.clone());
        let power = cell_power(nb, 0);
        serial.set_steady_state(&power);
        b.iter(|| {
            serial.advance(&power, HALF_INTERVAL_S);
            black_box(serial.block_temperatures()[0])
        })
    });
    for n_cells in [8usize, 64] {
        c.bench_function(&format!("batch/cohort_{n_cells}_advance_all"), |b| {
            let mut batch = seeded_batch(&net, n_cells);
            let powers = power_matrix(nb, n_cells);
            b.iter(|| {
                batch.advance_all(&powers, HALF_INTERVAL_S);
                black_box(batch.block_column(0)[0])
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(100);
    targets = bench
}
criterion_main!(benches);
