//! Serial vs threads vs processes sweep head-to-head, plus the
//! warm-start cache under contention.
//!
//! First the 26-application evaluation set runs under the baseline and
//! the combined distributed frontend as one [`JobSpec`] grid three ways:
//! one worker, every hardware thread, and sharded across OS processes
//! via [`ShardRunner`] (the only configuration where cells do not share
//! an address space — real multi-core contention, not timesharing).
//! Byte-identity of all three reports is asserted before any number is
//! reported. The process leg needs the `distfront-scenarios` worker
//! binary next to the bench executable (`cargo build --release -p
//! distfront`); it degrades to a printed skip when absent.
//!
//! Then the [`WarmStartCache`] is measured head-to-head: one shard
//! (every lookup through a single lock — the pre-sharding design)
//! against the default sharded layout, at 1 worker and at ≥ 4 workers.
//!
//! Both sections land in `BENCH_sweep.json` at the workspace root
//! (override with `DISTFRONT_BENCH_SWEEP_JSON`), giving CI a tracked
//! baseline: cache sharding must be free serially and win under
//! contention, and the executor numbers record the thread vs process
//! scaling on the recorded `host_cores`.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront::engine::{EngineError, WarmStartCache};
use distfront::job::{JobEnv, JobSpec};
use distfront::shard::ShardRunner;
use distfront::{ExperimentConfig, SweepRunner};
use distfront_bench::{bench_uops, evaluation_apps, kernel_app};
use distfront_power::{LeakageModel, Machine};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::Instant;

/// Locates the `distfront-scenarios` worker binary next to this bench
/// executable (`target/<profile>/deps/sweep-<hash>` → the profile dir).
fn worker_binary() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let deps = exe.parent()?;
    [
        deps.join("distfront-scenarios"),
        deps.parent()?.join("distfront-scenarios"),
    ]
    .into_iter()
    .find(|p| p.is_file())
}

/// The three-way executor comparison; returns the `"executor"` JSON
/// section.
fn executor_head_to_head() -> String {
    let uops = bench_uops();
    let apps: Vec<&str> = evaluation_apps().iter().map(|a| a.name).collect();
    let cells = 2 * apps.len();
    let spec = JobSpec::grid(["baseline", "drc+bh+ab"], apps).with_uops(uops);
    let cores = SweepRunner::new().threads();
    println!(
        "\nsweep executor: {cells} cells x {uops} uops, serial vs {cores} threads vs processes..."
    );

    let t0 = Instant::now();
    let serial = spec
        .clone()
        .with_workers(1)
        .execute(&JobEnv::default(), |_| {})
        .expect("bench grid resolves");
    let serial_s = t0.elapsed().as_secs_f64();
    assert!(
        serial.report.is_complete(),
        "bench grid must have no failed cells"
    );

    let t1 = Instant::now();
    let threads = spec
        .clone()
        .with_workers(0)
        .execute(&JobEnv::default(), |_| {})
        .expect("bench grid resolves");
    let threads_s = t1.elapsed().as_secs_f64();
    assert_eq!(
        serial.csv_rows(),
        threads.csv_rows(),
        "threaded sweep diverged from serial"
    );

    let processes = cores.max(2);
    let process_leg = worker_binary().map(|worker| {
        let dir =
            std::env::temp_dir().join(format!("distfront-shard-bench-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t2 = Instant::now();
        let outcome = ShardRunner::new(spec.clone(), processes)
            .with_dir(&dir)
            .with_worker(&worker)
            .run()
            .expect("shard coordinator setup");
        let processes_s = t2.elapsed().as_secs_f64();
        assert!(
            outcome.failed_shards.is_empty(),
            "bench shards must not die: {:?}",
            outcome.failed_shards
        );
        assert_eq!(
            outcome.csv_rows,
            serial.csv_rows(),
            "multi-process sweep diverged from serial"
        );
        let _ = std::fs::remove_dir_all(&dir);
        processes_s
    });

    match process_leg {
        Some(processes_s) => {
            println!(
                "serial {serial_s:.2} s | {cores} threads {threads_s:.2} s ({:.2}x) | \
                 {processes} processes {processes_s:.2} s ({:.2}x) — all three byte-identical\n",
                serial_s / threads_s,
                serial_s / processes_s
            );
            format!(
                "{{\n    \"grid_cells\": {cells},\n    \"uops\": {uops},\n    \
                 \"serial_s\": {serial_s:.3},\n    \"threads\": {cores},\n    \
                 \"threads_s\": {threads_s:.3},\n    \
                 \"threads_speedup\": {:.2},\n    \"processes\": {processes},\n    \
                 \"processes_s\": {processes_s:.3},\n    \"processes_speedup\": {:.2}\n  }}",
                serial_s / threads_s,
                serial_s / processes_s
            )
        }
        None => {
            println!(
                "serial {serial_s:.2} s | {cores} threads {threads_s:.2} s ({:.2}x) | \
                 processes skipped: distfront-scenarios not built \
                 (run `cargo build --release -p distfront`)\n",
                serial_s / threads_s
            );
            format!(
                "{{\n    \"grid_cells\": {cells},\n    \"uops\": {uops},\n    \
                 \"serial_s\": {serial_s:.3},\n    \"threads\": {cores},\n    \
                 \"threads_s\": {threads_s:.3},\n    \
                 \"threads_speedup\": {:.2},\n    \"processes\": null\n  }}",
                serial_s / threads_s
            )
        }
    }
}

/// Distinct nominal power profiles, every one a distinct cache key.
fn key_set(machine: Machine, keys: usize) -> Vec<Vec<f64>> {
    (0..keys)
        .map(|k| {
            (0..machine.block_count())
                .map(|b| 0.25 + 0.01 * k as f64 + 0.003 * b as f64)
                .collect()
        })
        .collect()
}

/// Mean ns per `get_or_compute` hit with `threads` workers hammering a
/// pre-populated cache (the sweep's steady state: every lookup a hit).
fn time_cache_lookups(cache: &WarmStartCache, machine: Machine, threads: usize) -> f64 {
    let keys = key_set(machine, 64);
    for nominal in &keys {
        cache
            .get_or_compute(machine, &LeakageModel::paper(), nominal, || {
                Ok::<_, EngineError>(vec![60.0; machine.block_count()])
            })
            .expect("synthetic solve cannot fail");
    }
    let per_thread = 20_000usize;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let keys = &keys;
            let cache = &cache;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let nominal = &keys[(i + t) % keys.len()];
                    let (state, hit) = cache
                        .get_or_compute(machine, &LeakageModel::paper(), nominal, || {
                            Err::<Vec<f64>, _>(EngineError::NotConverged("must be a hit"))
                        })
                        .expect("every lookup is a hit");
                    assert!(hit);
                    black_box(state);
                }
            });
        }
    });
    t0.elapsed().as_secs_f64() * 1e9 / (threads * per_thread) as f64
}

/// The warm-cache contention comparison; returns the `"warm_cache"` JSON
/// section.
fn cache_contention_comparison() -> String {
    let machine = Machine::new(2, 4, 3);
    let host_cores = SweepRunner::new().threads();
    let width = host_cores.max(4);
    let contended = WarmStartCache::with_shards(1);
    let sharded = WarmStartCache::new();

    let contended_serial_ns = time_cache_lookups(&contended, machine, 1);
    let sharded_serial_ns = time_cache_lookups(&sharded, machine, 1);
    let contended_wide_ns = time_cache_lookups(&contended, machine, width);
    let sharded_wide_ns = time_cache_lookups(&sharded, machine, width);
    let speedup = contended_wide_ns / sharded_wide_ns;
    println!(
        "warm cache ({} shards vs 1): serial {sharded_serial_ns:.0} vs {contended_serial_ns:.0} \
         ns/lookup | {width} workers {sharded_wide_ns:.0} vs {contended_wide_ns:.0} ns/lookup \
         | contended/sharded speedup {speedup:.1}x\n",
        sharded.shard_count()
    );
    format!(
        "{{\n    \"shards\": {},\n    \"workers\": {width},\n    \
         \"contended_serial_ns_per_lookup\": {contended_serial_ns:.1},\n    \
         \"sharded_serial_ns_per_lookup\": {sharded_serial_ns:.1},\n    \
         \"contended_parallel_ns_per_lookup\": {contended_wide_ns:.1},\n    \
         \"sharded_parallel_ns_per_lookup\": {sharded_wide_ns:.1},\n    \
         \"parallel_speedup\": {speedup:.2}\n  }}",
        sharded.shard_count()
    )
}

fn bench(c: &mut Criterion) {
    let executor = executor_head_to_head();
    let warm_cache = cache_contention_comparison();
    let host_cores = SweepRunner::new().threads();
    let json = format!(
        "{{\n  \"bench\": \"sweep\",\n  \"host_cores\": {host_cores},\n  \
         \"executor\": {executor},\n  \"warm_cache\": {warm_cache}\n}}\n"
    );
    let path = std::env::var("DISTFRONT_BENCH_SWEEP_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json").into());
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }

    let app = kernel_app();
    c.bench_function("sweep/parallel_two_config_grid", |b| {
        let configs = [
            ExperimentConfig::baseline().with_uops(20_000),
            ExperimentConfig::combined().with_uops(20_000),
        ];
        let apps = [app];
        let runner = SweepRunner::new();
        b.iter(|| black_box(runner.try_grid(&configs, &apps)))
    });
    c.bench_function("sweep/warm_cache_hit_sharded", |b| {
        let machine = Machine::new(2, 4, 3);
        let cache = WarmStartCache::new();
        let nominal = key_set(machine, 1).pop().unwrap();
        cache
            .get_or_compute(machine, &LeakageModel::paper(), &nominal, || {
                Ok::<_, EngineError>(vec![60.0; machine.block_count()])
            })
            .unwrap();
        b.iter(|| {
            black_box(
                cache
                    .get_or_compute(machine, &LeakageModel::paper(), &nominal, || {
                        Err::<Vec<f64>, _>(EngineError::NotConverged("must hit"))
                    })
                    .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
