//! Serial vs. parallel sweep: runs the 26-application evaluation set under
//! the baseline and the combined distributed frontend through the staged
//! engine, once on a single worker and once across every available core,
//! verifies the results are bit-identical, and prints the wall-clock
//! speedup. On a 4-core machine the parallel sweep is expected to finish
//! ≥ 2× faster; the grid is embarrassingly parallel, so the speedup tracks
//! the core count.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront::{ExperimentConfig, SweepRunner};
use distfront_bench::{bench_uops, evaluation_apps, kernel_app};
use std::hint::black_box;
use std::time::Instant;

fn sweep_comparison() {
    let uops = bench_uops();
    let configs = [
        ExperimentConfig::baseline().with_uops(uops),
        ExperimentConfig::combined().with_uops(uops),
    ];
    let apps = evaluation_apps();
    let cores = SweepRunner::new().threads();
    println!(
        "\nsweep: {} apps x {} configs x {uops} uops, serial vs {cores} workers...",
        apps.len(),
        configs.len()
    );

    let t0 = Instant::now();
    let serial = SweepRunner::serial().grid(&configs, apps);
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = SweepRunner::new().grid(&configs, apps);
    let parallel_s = t1.elapsed().as_secs_f64();

    assert_eq!(serial, parallel, "parallel sweep diverged from serial");
    println!(
        "serial {serial_s:.2} s | parallel {parallel_s:.2} s | speedup {:.2}x on {cores} cores (results bit-identical)\n",
        serial_s / parallel_s
    );
}

fn bench(c: &mut Criterion) {
    sweep_comparison();
    let app = kernel_app();
    c.bench_function("sweep/parallel_two_config_grid", |b| {
        let configs = [
            ExperimentConfig::baseline().with_uops(20_000),
            ExperimentConfig::combined().with_uops(20_000),
        ];
        let apps = [app];
        let runner = SweepRunner::new();
        b.iter(|| black_box(runner.grid(&configs, &apps)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
