//! Serial vs. parallel sweep, plus the warm-start cache under contention.
//!
//! First the 26-application evaluation set runs under the baseline and the
//! combined distributed frontend through the staged engine, once on a
//! single worker and once across every available core, verifying the
//! fault-tolerant reports are bit-identical and printing the wall-clock
//! speedup (on a 4-core machine expect ≥ 2×; the grid is embarrassingly
//! parallel, so the speedup tracks the core count).
//!
//! Then the [`WarmStartCache`] is measured head-to-head: one shard (every
//! lookup through a single lock — the pre-sharding design) against the
//! default sharded layout, at 1 worker and at ≥ 4 workers. The numbers
//! are written to `BENCH_sweep.json` at the workspace root (override with
//! `DISTFRONT_BENCH_SWEEP_JSON`), giving CI a tracked baseline: sharding
//! must be free serially and win under contention. The parallel number is
//! only meaningful on a multicore host (`host_cores` in the JSON records
//! it): on one core the workers timeshare and both layouts tie.

use criterion::{criterion_group, criterion_main, Criterion};
use distfront::engine::{EngineError, WarmStartCache};
use distfront::{ExperimentConfig, SweepRunner};
use distfront_bench::{bench_uops, evaluation_apps, kernel_app};
use distfront_power::{LeakageModel, Machine};
use std::hint::black_box;
use std::time::Instant;

fn sweep_comparison() {
    let uops = bench_uops();
    let configs = [
        ExperimentConfig::baseline().with_uops(uops),
        ExperimentConfig::combined().with_uops(uops),
    ];
    let apps = evaluation_apps();
    let cores = SweepRunner::new().threads();
    println!(
        "\nsweep: {} apps x {} configs x {uops} uops, serial vs {cores} workers...",
        apps.len(),
        configs.len()
    );

    let t0 = Instant::now();
    let serial = SweepRunner::serial().try_grid(&configs, apps);
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let parallel = SweepRunner::new().try_grid(&configs, apps);
    let parallel_s = t1.elapsed().as_secs_f64();

    assert_eq!(serial, parallel, "parallel sweep diverged from serial");
    assert!(serial.is_complete(), "bench grid must have no failed cells");
    println!(
        "serial {serial_s:.2} s | parallel {parallel_s:.2} s | speedup {:.2}x on {cores} cores (results bit-identical)\n",
        serial_s / parallel_s
    );
}

/// Distinct nominal power profiles, every one a distinct cache key.
fn key_set(machine: Machine, keys: usize) -> Vec<Vec<f64>> {
    (0..keys)
        .map(|k| {
            (0..machine.block_count())
                .map(|b| 0.25 + 0.01 * k as f64 + 0.003 * b as f64)
                .collect()
        })
        .collect()
}

/// Mean ns per `get_or_compute` hit with `threads` workers hammering a
/// pre-populated cache (the sweep's steady state: every lookup a hit).
fn time_cache_lookups(cache: &WarmStartCache, machine: Machine, threads: usize) -> f64 {
    let keys = key_set(machine, 64);
    for nominal in &keys {
        cache
            .get_or_compute(machine, &LeakageModel::paper(), nominal, || {
                Ok::<_, EngineError>(vec![60.0; machine.block_count()])
            })
            .expect("synthetic solve cannot fail");
    }
    let per_thread = 20_000usize;
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let keys = &keys;
            let cache = &cache;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let nominal = &keys[(i + t) % keys.len()];
                    let (state, hit) = cache
                        .get_or_compute(machine, &LeakageModel::paper(), nominal, || {
                            Err::<Vec<f64>, _>(EngineError::NotConverged("must be a hit"))
                        })
                        .expect("every lookup is a hit");
                    assert!(hit);
                    black_box(state);
                }
            });
        }
    });
    t0.elapsed().as_secs_f64() * 1e9 / (threads * per_thread) as f64
}

fn cache_contention_comparison() {
    let machine = Machine::new(2, 4, 3);
    let host_cores = SweepRunner::new().threads();
    let width = host_cores.max(4);
    let contended = WarmStartCache::with_shards(1);
    let sharded = WarmStartCache::new();

    let contended_serial_ns = time_cache_lookups(&contended, machine, 1);
    let sharded_serial_ns = time_cache_lookups(&sharded, machine, 1);
    let contended_wide_ns = time_cache_lookups(&contended, machine, width);
    let sharded_wide_ns = time_cache_lookups(&sharded, machine, width);
    let speedup = contended_wide_ns / sharded_wide_ns;
    println!(
        "warm cache ({} shards vs 1): serial {sharded_serial_ns:.0} vs {contended_serial_ns:.0} \
         ns/lookup | {width} workers {sharded_wide_ns:.0} vs {contended_wide_ns:.0} ns/lookup \
         | contended/sharded speedup {speedup:.1}x\n",
        sharded.shard_count()
    );

    let json = format!(
        "{{\n  \"bench\": \"sweep_warm_cache\",\n  \"shards\": {},\n  \"workers\": {width},\n  \
         \"host_cores\": {host_cores},\n  \
         \"contended_serial_ns_per_lookup\": {contended_serial_ns:.1},\n  \
         \"sharded_serial_ns_per_lookup\": {sharded_serial_ns:.1},\n  \
         \"contended_parallel_ns_per_lookup\": {contended_wide_ns:.1},\n  \
         \"sharded_parallel_ns_per_lookup\": {sharded_wide_ns:.1},\n  \
         \"parallel_speedup\": {speedup:.2}\n}}\n",
        sharded.shard_count()
    );
    let path = std::env::var("DISTFRONT_BENCH_SWEEP_JSON")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json").into());
    match std::fs::write(&path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    sweep_comparison();
    cache_contention_comparison();
    let app = kernel_app();
    c.bench_function("sweep/parallel_two_config_grid", |b| {
        let configs = [
            ExperimentConfig::baseline().with_uops(20_000),
            ExperimentConfig::combined().with_uops(20_000),
        ];
        let apps = [app];
        let runner = SweepRunner::new();
        b.iter(|| black_box(runner.try_grid(&configs, &apps)))
    });
    c.bench_function("sweep/warm_cache_hit_sharded", |b| {
        let machine = Machine::new(2, 4, 3);
        let cache = WarmStartCache::new();
        let nominal = key_set(machine, 1).pop().unwrap();
        cache
            .get_or_compute(machine, &LeakageModel::paper(), &nominal, || {
                Ok::<_, EngineError>(vec![60.0; machine.block_count()])
            })
            .unwrap();
        b.iter(|| {
            black_box(
                cache
                    .get_or_compute(machine, &LeakageModel::paper(), &nominal, || {
                        Err::<Vec<f64>, _>(EngineError::NotConverged("must hit"))
                    })
                    .unwrap(),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
