//! Shared helpers for the figure-regeneration benchmarks.
//!
//! Each bench binary (`fig01` … `fig14`, `ablation`) first *regenerates its
//! figure* — running the paper's configurations over the 26 synthetic
//! SPEC2000 profiles and printing the same rows the paper plots — and then
//! lets Criterion time a representative simulation kernel so `cargo bench`
//! also tracks performance regressions of the simulator itself.
//!
//! The run length per application defaults to [`DEFAULT_UOPS`] micro-ops
//! (scaled down from the paper's 200 M instructions so the whole harness
//! finishes in minutes); set `DISTFRONT_BENCH_UOPS` to raise it.

use distfront_trace::AppProfile;

/// Default micro-ops per application for figure regeneration.
pub const DEFAULT_UOPS: u64 = 200_000;

/// Micro-ops per application, honouring `DISTFRONT_BENCH_UOPS`.
pub fn bench_uops() -> u64 {
    std::env::var("DISTFRONT_BENCH_UOPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_UOPS)
}

/// The full 26-application SPEC2000 evaluation set.
pub fn evaluation_apps() -> &'static [AppProfile] {
    AppProfile::spec2000()
}

/// A small kernel workload for the Criterion timing loops.
pub fn kernel_app() -> AppProfile {
    *AppProfile::by_name("gzip").expect("gzip profile exists")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        assert_eq!(evaluation_apps().len(), 26);
        assert!(bench_uops() >= 1);
        assert_eq!(kernel_app().name, "gzip");
    }
}
